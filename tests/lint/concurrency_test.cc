/**
 * @file
 * Cross-file concurrency rules (C1..C3): the pass-1 index, the merged
 * pass-2 analysis, rule filtering, and the suppression edge cases that
 * only exist for cross-file findings (anchored in a different file
 * than their cause, multi-rule lists with whitespace, wildcard
 * next-line interaction).
 *
 * Inline sources exercise the semantics; the committed fixture tree
 * pins the end-to-end behavior the golden test also covers.
 */

#include "lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace {

using proteus::lint::analyzeSources;
using proteus::lint::Finding;
using proteus::lint::LintOptions;

using SourceList = std::vector<std::pair<std::string, std::string>>;

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Read one committed fixture as a (repo-relative, text) source. */
std::pair<std::string, std::string>
fixtureSource(const std::string& rel)
{
    const std::string abs = std::string(LINT_FIXTURE_DIR) + "/" + rel;
    return {"tests/lint/fixtures/" + rel, readFile(abs)};
}

/** Run both passes restricted to the concurrency rules. */
std::vector<Finding>
analyzeC(const SourceList& sources)
{
    LintOptions options;
    options.rules = {"C1", "C2", "C3"};
    return analyzeSources(sources, options).findings;
}

std::vector<Finding>
withRule(const std::vector<Finding>& fs, const std::string& rule)
{
    std::vector<Finding> out;
    for (const Finding& f : fs) {
        if (f.rule == rule)
            out.push_back(f);
    }
    return out;
}

// ---------------------------------------------------------------------------
// C1: raw lock()/unlock() on resolved mutexes
// ---------------------------------------------------------------------------

TEST(ConcurrencyC1, FlagsRawLockAndUnlockOnResolvedMutex)
{
    auto fs = analyzeC({{"src/core/raw.cc",
                         "#include <mutex>\n"
                         "namespace x {\n"
                         "std::mutex g_mu;\n"
                         "void f() {\n"
                         "    g_mu.lock();\n"
                         "    g_mu.unlock();\n"
                         "}\n"
                         "}  // namespace x\n"}});
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "C1");
    EXPECT_EQ(fs[0].line, 5);
    EXPECT_EQ(fs[1].rule, "C1");
    EXPECT_EQ(fs[1].line, 6);
}

TEST(ConcurrencyC1, IgnoresLockCallsOnNonMutexObjects)
{
    // weak_ptr::lock() and arbitrary .lock() methods never resolve to
    // a declared mutex, so C1 stays quiet.
    auto fs = analyzeC(
        {{"src/core/wp.cc",
          "#include <memory>\n"
          "namespace x {\n"
          "int f(std::weak_ptr<int> w) {\n"
          "    auto s = w.lock();\n"
          "    return s ? *s : 0;\n"
          "}\n"
          "}  // namespace x\n"}});
    EXPECT_TRUE(fs.empty());
}

TEST(ConcurrencyC1, RaiiGuardsAreTheSanctionedForm)
{
    auto fs = analyzeC(
        {{"src/core/guarded.cc",
          "#include <mutex>\n"
          "namespace x {\n"
          "std::mutex g_mu;\n"
          "void f() {\n"
          "    std::lock_guard<std::mutex> l(g_mu);\n"
          "}\n"
          "}  // namespace x\n"}});
    EXPECT_TRUE(fs.empty());
}

TEST(ConcurrencyC1, SyncShimIsTheSingleAllowedRawLockSite)
{
    const std::string body =
        "namespace proteus {\n"
        "class Mutex {\n"
        "    void lock() { mu_.lock(); }\n"
        "    std::mutex mu_;\n"
        "};\n"
        "}  // namespace proteus\n";
    EXPECT_TRUE(analyzeC({{"src/common/sync.h", body}}).empty());
    EXPECT_FALSE(analyzeC({{"src/common/other.h", body}}).empty());
}

// ---------------------------------------------------------------------------
// C2: lock-order inversions across the merged graph
// ---------------------------------------------------------------------------

TEST(ConcurrencyC2, FlagsInversionWithinOneTranslationUnit)
{
    auto fs = analyzeC({{"src/core/two.cc",
                         "#include <mutex>\n"
                         "namespace x {\n"
                         "std::mutex g_a;\n"
                         "std::mutex g_b;\n"
                         "void f() {\n"
                         "    std::lock_guard<std::mutex> la(g_a);\n"
                         "    std::lock_guard<std::mutex> lb(g_b);\n"
                         "}\n"
                         "void g() {\n"
                         "    std::lock_guard<std::mutex> lb(g_b);\n"
                         "    std::lock_guard<std::mutex> la(g_a);\n"
                         "}\n"
                         "}  // namespace x\n"}});
    // One finding per inverted edge: a->b and b->a each get one.
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "C2");
    EXPECT_EQ(fs[1].rule, "C2");
    EXPECT_NE(fs[0].message.find("deadlock"), std::string::npos);
}

TEST(ConcurrencyC2, ConsistentOrderAcrossUnitsIsClean)
{
    const char* header =
        "#include <mutex>\n"
        "namespace x {\n"
        "struct A { std::mutex a_mu; };\n"
        "struct B { std::mutex b_mu; };\n"
        "extern A g_a;\n"
        "extern B g_b;\n"
        "}  // namespace x\n";
    auto tu = [](const char* fn) {
        return std::string("#include <mutex>\n"
                           "#include \"core/order.h\"\n"
                           "namespace x {\n"
                           "void ") +
               fn +
               "() {\n"
               "    std::lock_guard<std::mutex> la(g_a.a_mu);\n"
               "    std::lock_guard<std::mutex> lb(g_b.b_mu);\n"
               "}\n"
               "}  // namespace x\n";
    };
    auto fs = analyzeC({{"src/core/order.h", header},
                        {"src/core/use1.cc", tu("f")},
                        {"src/core/use2.cc", tu("g")}});
    EXPECT_TRUE(withRule(fs, "C2").empty());
}

TEST(ConcurrencyC2, CrossFileInversionAnchorsInBothUnits)
{
    auto fs = analyzeC({fixtureSource("src/core/lock_order.h"),
                        fixtureSource("src/core/lock_order_a.cc"),
                        fixtureSource("src/core/lock_order_b.cc")});
    auto c2 = withRule(fs, "C2");
    ASSERT_EQ(c2.size(), 2u);
    // Each finding anchors at its own TU's second acquisition and its
    // witness cites the opposite file, so both sides of the cycle are
    // actionable on their own.
    EXPECT_NE(c2[0].file.find("lock_order_a.cc"), std::string::npos);
    EXPECT_NE(c2[0].message.find("lock_order_b.cc"), std::string::npos);
    EXPECT_NE(c2[1].file.find("lock_order_b.cc"), std::string::npos);
    EXPECT_NE(c2[1].message.find("lock_order_a.cc"), std::string::npos);
    EXPECT_NE(c2[0].message.find("PlanCache::plan_mu"),
              std::string::npos);
    EXPECT_NE(c2[0].message.find("RouteTable::route_mu"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// C3: shared mutable state in thread-reachable code
// ---------------------------------------------------------------------------

TEST(ConcurrencyC3, FlagsUnguardedGlobalInSweep)
{
    auto fs = analyzeC({{"src/sweep/job.cc",
                         "namespace x {\n"
                         "int g_shared = 0;\n"
                         "}  // namespace x\n"}});
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "C3");
    EXPECT_EQ(fs[0].line, 2);
}

TEST(ConcurrencyC3, AtomicConstAndThreadLocalAreClean)
{
    auto fs = analyzeC(
        {{"src/sweep/clean.cc",
          "#include <atomic>\n"
          "namespace x {\n"
          "std::atomic<int> g_count{0};\n"
          "const int kCap = 4;\n"
          "constexpr double kEps = 1e-9;\n"
          "thread_local int t_scratch = 0;\n"
          "}  // namespace x\n"}});
    EXPECT_TRUE(fs.empty());
}

TEST(ConcurrencyC3, GuardedByResolvedMutexIsClean)
{
    auto fs = analyzeC(
        {{"src/sweep/guarded.cc",
          "#include <mutex>\n"
          "#include \"common/annotations.h\"\n"
          "namespace x {\n"
          "std::mutex g_mu;\n"
          "int g_state PROTEUS_GUARDED_BY(g_mu) = 0;\n"
          "}  // namespace x\n"}});
    EXPECT_TRUE(fs.empty());
}

TEST(ConcurrencyC3, GuardNamingNoKnownMutexFires)
{
    auto fs = analyzeC(
        {{"src/sweep/badguard.cc",
          "#include \"common/annotations.h\"\n"
          "namespace x {\n"
          "int g_state PROTEUS_GUARDED_BY(g_phantom_mu) = 0;\n"
          "}  // namespace x\n"}});
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "C3");
    EXPECT_NE(fs[0].message.find("g_phantom_mu"), std::string::npos);
}

TEST(ConcurrencyC3, IncludeClosureReachesHeadersOutsideSweep)
{
    auto fs = analyzeC({{"src/sweep/job.cc",
                         "#include \"core/shared.h\"\n"},
                        {"src/core/shared.h",
                         "namespace x {\n"
                         "int g_reached = 0;\n"
                         "}  // namespace x\n"},
                        {"src/core/island.h",
                         "namespace x {\n"
                         "int g_unreached = 0;\n"
                         "}  // namespace x\n"}});
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].file, "src/core/shared.h");
    EXPECT_EQ(fs[0].rule, "C3");
}

TEST(ConcurrencyC3, HeaderReachabilityExtendsToItsImplementation)
{
    // A .h pulled into the closure drags its paired .cc along: the
    // implementation runs on the same threads the interface exposes.
    auto fs = analyzeC({{"src/sweep/job.cc",
                         "#include \"core/table.h\"\n"},
                        {"src/core/table.h",
                         "namespace x {\n"
                         "int lookup(int k);\n"
                         "}  // namespace x\n"},
                        {"src/core/table.cc",
                         "#include \"core/table.h\"\n"
                         "namespace x {\n"
                         "int lookup(int k) {\n"
                         "    static int hits = 0;\n"
                         "    return k + ++hits;\n"
                         "}\n"
                         "}  // namespace x\n"}});
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].file, "src/core/table.cc");
    EXPECT_NE(fs[0].message.find("function-local static"),
              std::string::npos);
}

TEST(ConcurrencyC3, NonReachableCodeHasNoObligation)
{
    auto fs = analyzeC({{"src/metrics/aside.cc",
                         "namespace x {\n"
                         "int g_counter = 0;\n"
                         "}  // namespace x\n"}});
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// Rule filtering (the --rule flag's engine)
// ---------------------------------------------------------------------------

TEST(ConcurrencyOptions, RuleFilterSelectsCrossFileRules)
{
    SourceList sources = {fixtureSource("src/sweep/c1_raw_lock.cc"),
                          fixtureSource("src/sweep/c3_globals.cc"),
                          fixtureSource("src/core/c3_reachable.h")};
    LintOptions c1_only;
    c1_only.rules = {"C1"};
    for (const Finding& f :
         analyzeSources(sources, c1_only).findings)
        EXPECT_EQ(f.rule, "C1");

    LintOptions c3_only;
    c3_only.rules = {"C3"};
    auto c3 = analyzeSources(sources, c3_only).findings;
    EXPECT_FALSE(c3.empty());
    for (const Finding& f : c3)
        EXPECT_EQ(f.rule, "C3");
}

TEST(ConcurrencyOptions, PerFileRuleFilterExcludesConcurrency)
{
    SourceList sources = {fixtureSource("src/sweep/c1_raw_lock.cc")};
    LintOptions d_only;
    d_only.rules = {"D1", "D2", "D3", "D4"};
    for (const Finding& f : analyzeSources(sources, d_only).findings)
        EXPECT_NE(f.rule[0], 'C');
}

// ---------------------------------------------------------------------------
// Suppression edge cases specific to cross-file findings
// ---------------------------------------------------------------------------

TEST(ConcurrencySuppressions, MultiRuleListWithWhitespaceApplies)
{
    // c1_raw_lock.cc line 17 carries a same-line marker naming C1 and
    // C3 with interior whitespace around both ids — whitespace must
    // not defeat the rule-name match.
    auto fs = analyzeC({fixtureSource("src/sweep/c1_raw_lock.cc")});
    auto c1 = withRule(fs, "C1");
    ASSERT_EQ(c1.size(), 4u);
    EXPECT_FALSE(c1[0].suppressed);
    EXPECT_FALSE(c1[1].suppressed);
    EXPECT_TRUE(c1[2].suppressed);
    EXPECT_EQ(c1[2].suppress_reason,
              "startup path, single-threaded by construction");
    EXPECT_TRUE(c1[3].suppressed);
}

TEST(ConcurrencySuppressions, WildcardNextLineCoversCrossFileRule)
{
    auto fs = analyzeC({fixtureSource("src/sweep/c3_globals.cc")});
    bool saw_wildcarded = false;
    for (const Finding& f : fs) {
        if (f.message.find("g_wildcarded") != std::string::npos) {
            saw_wildcarded = true;
            EXPECT_TRUE(f.suppressed);
        }
    }
    EXPECT_TRUE(saw_wildcarded);
}

TEST(ConcurrencySuppressions, CrossFileFindingSuppressesAtItsAnchor)
{
    // The reachability that creates the obligation lives in
    // c3_globals.cc, but the findings anchor in c3_reachable.h — the
    // suppression on the anchor line is the one that counts.
    auto fs = analyzeC({fixtureSource("src/sweep/c3_globals.cc"),
                        fixtureSource("src/core/c3_reachable.h")});
    auto anchored = withRule(fs, "C3");
    int live_in_header = 0;
    int suppressed_in_header = 0;
    for (const Finding& f : anchored) {
        if (f.file.find("c3_reachable.h") == std::string::npos)
            continue;
        if (f.suppressed)
            ++suppressed_in_header;
        else
            ++live_in_header;
    }
    EXPECT_EQ(live_in_header, 1);      // g_core_shared
    EXPECT_EQ(suppressed_in_header, 1);  // g_core_suppressed
}

// ---------------------------------------------------------------------------
// Pass-1 index and the schema stamp
// ---------------------------------------------------------------------------

TEST(ConcurrencyIndex, TracksHeldLocksAtNestedAcquisitions)
{
    auto idx = proteus::lint::indexSource(
        "src/core/nest.cc",
        "#include <mutex>\n"
        "namespace x {\n"
        "std::mutex g_a;\n"
        "std::mutex g_b;\n"
        "void f() {\n"
        "    std::lock_guard<std::mutex> la(g_a);\n"
        "    std::lock_guard<std::mutex> lb(g_b);\n"
        "}\n"
        "}  // namespace x\n");
    ASSERT_EQ(idx.mutexes.size(), 2u);
    ASSERT_EQ(idx.locks.size(), 2u);
    EXPECT_EQ(idx.locks[0].object, "g_a");
    EXPECT_TRUE(idx.locks[0].held.empty());
    EXPECT_EQ(idx.locks[1].object, "g_b");
    ASSERT_EQ(idx.locks[1].held.size(), 1u);
    EXPECT_EQ(idx.locks[1].held[0], "g_a");
}

TEST(ConcurrencyIndex, RecordsIncludesAndGuardAnnotations)
{
    auto idx = proteus::lint::indexSource(
        "src/sweep/anno.cc",
        "#include <mutex>\n"
        "#include \"common/annotations.h\"\n"
        "namespace x {\n"
        "std::mutex g_mu;\n"
        "int g_v PROTEUS_GUARDED_BY(g_mu) = 0;\n"
        "}  // namespace x\n");
    ASSERT_EQ(idx.includes.size(), 2u);
    EXPECT_EQ(idx.includes[1], "common/annotations.h");
    bool found = false;
    for (const auto& v : idx.globals) {
        if (v.name == "g_v") {
            found = true;
            EXPECT_TRUE(v.annotated);
            EXPECT_EQ(v.guard, "g_mu");
        }
    }
    EXPECT_TRUE(found);
}

TEST(ConcurrencyJson, SchemaStampIsVersionTwo)
{
    const std::string json = proteus::lint::toJson({}, 0);
    EXPECT_NE(json.find("\"schema\": 2"), std::string::npos);
    EXPECT_EQ(json.find("\"version\""), std::string::npos);
}

}  // namespace
