#include "core/router.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/batching.h"
#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::World;

class Recorder : public QueryObserver
{
  public:
    void onArrival(const Query&) override { ++arrivals; }
    void
    onFinished(const Query& q) override
    {
        if (q.status == QueryStatus::Dropped)
            ++dropped;
        else
            ++served;
    }
    int arrivals = 0;
    int served = 0;
    int dropped = 0;
};

struct RouterFixture {
    RouterFixture() : world(miniWorld(4, 2, 2))
    {
        resnet = world.registry.findFamily("resnet");
        lb = std::make_unique<LoadBalancer>(&sim, resnet, &rec);
        // Three v100/gtx workers hosting the least accurate resnet.
        VariantId v = world.registry.leastAccurate(resnet);
        for (DeviceId d : {4u, 6u, 7u}) {
            auto w = std::make_unique<Worker>(
                &sim, &world.cluster, d, &world.registry,
                world.cost.get(), world.profiles.get(), &rec, nullptr);
            w->setBatchingPolicy(std::make_unique<ProteusBatching>());
            w->hostVariant(v, true);
            workers.push_back(std::move(w));
        }
    }

    Query*
    makeQuery(Time arrival)
    {
        arena.push_back(Query{});
        arena.back().family = resnet;
        arena.back().arrival = arrival;
        arena.back().deadline = arrival + world.profiles->slo(resnet);
        return &arena.back();
    }

    World world;
    Simulator sim;
    Recorder rec;
    FamilyId resnet;
    std::unique_ptr<LoadBalancer> lb;
    std::vector<std::unique_ptr<Worker>> workers;
    std::deque<Query> arena;
};

TEST(RouterTest, WeightedSplitConvergesToWeights)
{
    RouterFixture fix;
    fix.lb->setRouting({{fix.workers[0].get(), 0.5},
                        {fix.workers[1].get(), 0.3},
                        {fix.workers[2].get(), 0.2}});
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        fix.sim.scheduleAt(millis(i), [&fix, i] {
            fix.lb->submit(fix.makeQuery(millis(i)));
        });
    }
    fix.sim.run();
    double total = 0.0;
    std::vector<double> got;
    for (auto& w : fix.workers) {
        got.push_back(static_cast<double>(w->served() + w->dropped() +
                                          w->queueLength()));
        total += got.back();
    }
    EXPECT_NEAR(got[0] / total, 0.5, 0.02);
    EXPECT_NEAR(got[1] / total, 0.3, 0.02);
    EXPECT_NEAR(got[2] / total, 0.2, 0.02);
    EXPECT_EQ(fix.lb->shed(), 0u);
}

TEST(RouterTest, ShedsUnroutedFraction)
{
    RouterFixture fix;
    // Only 60% of demand routed: 40% must be shed deterministically.
    fix.lb->setRouting({{fix.workers[0].get(), 0.6}});
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        fix.sim.scheduleAt(millis(i), [&fix, i] {
            fix.lb->submit(fix.makeQuery(millis(i)));
        });
    }
    fix.sim.run();
    EXPECT_NEAR(static_cast<double>(fix.lb->shed()) / n, 0.4, 0.01);
    EXPECT_EQ(fix.lb->routed() + fix.lb->shed(),
              static_cast<std::uint64_t>(n));
}

TEST(RouterTest, NoTargetsShedsEverything)
{
    RouterFixture fix;
    fix.lb->setRouting({});
    for (int i = 0; i < 10; ++i) {
        fix.sim.scheduleAt(millis(i), [&fix, i] {
            fix.lb->submit(fix.makeQuery(millis(i)));
        });
    }
    fix.sim.run();
    EXPECT_EQ(fix.lb->shed(), 10u);
}

TEST(RouterTest, SkipsLoadingWorkers)
{
    RouterFixture fix;
    // Worker 1 starts a (non-instant) load: it must receive nothing
    // until ready even though its weight dominates.
    VariantId v = fix.world.registry.mostAccurate(fix.resnet);
    fix.workers[1]->hostVariant(v);  // loading now
    fix.lb->setRouting({{fix.workers[0].get(), 0.1},
                        {fix.workers[1].get(), 0.9}});
    for (int i = 0; i < 50; ++i) {
        fix.sim.scheduleAt(micros(100 * i), [&fix, i] {
            fix.lb->submit(fix.makeQuery(micros(100 * i)));
        });
    }
    fix.sim.run(millis(6));  // shorter than the load time
    EXPECT_EQ(fix.workers[1]->queueLength(), 0u);
    EXPECT_GT(fix.workers[0]->served() + fix.workers[0]->queueLength(),
              0u);
}

TEST(RouterTest, BurstAlarmFiresOnOverload)
{
    RouterFixture fix;
    int alarms = 0;
    fix.lb->setBurstAlarm([&] { ++alarms; }, 1.2);
    fix.lb->setPlannedCapacity(100.0);  // QPS
    fix.lb->setRouting({{fix.workers[0].get(), 1.0}});
    // Submit at ~500 QPS for 2 seconds: way above 120.
    for (int i = 0; i < 1000; ++i) {
        fix.sim.scheduleAt(millis(2 * i), [&fix, i] {
            fix.lb->submit(fix.makeQuery(millis(2 * i)));
        });
    }
    fix.sim.run();
    EXPECT_GE(alarms, 1);
    // Debounced to roughly one per second.
    EXPECT_LE(alarms, 4);
}

TEST(RouterTest, NoAlarmUnderCapacity)
{
    RouterFixture fix;
    int alarms = 0;
    fix.lb->setBurstAlarm([&] { ++alarms; }, 1.2);
    fix.lb->setPlannedCapacity(1000.0);
    fix.lb->setRouting({{fix.workers[0].get(), 1.0}});
    for (int i = 0; i < 100; ++i) {
        fix.sim.scheduleAt(millis(10 * i), [&fix, i] {
            fix.lb->submit(fix.makeQuery(millis(10 * i)));
        });
    }
    fix.sim.run();
    EXPECT_EQ(alarms, 0);
}

TEST(RouterTest, ResubmitDoesNotCountArrival)
{
    RouterFixture fix;
    fix.lb->setRouting({{fix.workers[0].get(), 1.0}});
    Query* q = fix.makeQuery(0);
    fix.sim.scheduleAt(0, [&] { fix.lb->resubmit(q); });
    fix.sim.run();
    EXPECT_EQ(fix.rec.arrivals, 0);
    EXPECT_EQ(fix.rec.served, 1);
}

TEST(RouterTest, WindowQpsTracksRate)
{
    RouterFixture fix;
    fix.lb->setRouting({{fix.workers[0].get(), 1.0}});
    for (int i = 0; i < 300; ++i) {
        fix.sim.scheduleAt(millis(10 * i), [&fix, i] {
            fix.lb->submit(fix.makeQuery(millis(10 * i)));
        });
    }
    // Probe once the 2-second monitor window is fully covered.
    Time probe = millis(2990);
    double qps = 0.0;
    fix.sim.scheduleAt(probe, [&] { qps = fix.lb->windowQps(); });
    fix.sim.run();
    EXPECT_NEAR(qps, 100.0, 10.0);
}

}  // namespace
}  // namespace proteus
