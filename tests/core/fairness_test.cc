/**
 * @file
 * Tests for the §7 fairness extension: weighting the worst per-family
 * effective accuracy in the resource-management MILP.
 */

#include <gtest/gtest.h>

#include "core/ilp_allocator.h"
#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::World;

/** Mean served accuracy of family @p f under @p plan at @p demand. */
double
familyAccuracy(const World& w, const Allocation& plan, FamilyId f,
               double demand)
{
    double acc = 0.0;
    double served = 0.0;
    for (const DeviceShare& s : plan.routing[f]) {
        double qps = s.weight * demand;
        acc += w.registry.variant(*plan.hosting[s.device]).accuracy *
               qps;
        served += qps;
    }
    return served > 0.0 ? acc / served : 0.0;
}

TEST(FairnessTest, WeightRaisesWorstFamilyAccuracy)
{
    // Load the cluster enough that someone must downshift; with the
    // pure objective the light-demand family takes the hit, with a
    // strong fairness weight the floor rises.
    World w = miniWorld(2, 1, 1);
    std::vector<double> demand{350.0, 120.0, 60.0};

    auto solve = [&](double weight) {
        IlpAllocatorOptions opts;
        opts.fairness_weight = weight;
        opts.milp_time_limit_sec = 10.0;
        IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get(),
                           opts);
        AllocationInput in;
        in.demand_qps = demand;
        return alloc.allocate(in);
    };

    Allocation base = solve(0.0);
    Allocation fair = solve(50.0);

    auto worst = [&](const Allocation& plan) {
        double m = 101.0;
        for (FamilyId f = 0; f < 3; ++f) {
            if (plan.routedFraction(f) > 0.0)
                m = std::min(m, familyAccuracy(w, plan, f, demand[f]));
        }
        return m;
    };
    EXPECT_GE(worst(fair), worst(base) - 1e-6);
    // Fairness cannot raise the total objective (§7: a trade-off).
    EXPECT_LE(fair.expected_accuracy, base.expected_accuracy + 1e-6);
}

TEST(FairnessTest, ZeroWeightMatchesBaseObjective)
{
    World w = miniWorld(2, 1, 1);
    std::vector<double> demand{100.0, 40.0, 20.0};
    IlpAllocatorOptions a;
    IlpAllocatorOptions b;
    b.fairness_weight = 0.0;
    IlpAllocator alloc_a(&w.registry, &w.cluster, w.profiles.get(), a);
    IlpAllocator alloc_b(&w.registry, &w.cluster, w.profiles.get(), b);
    AllocationInput in;
    in.demand_qps = demand;
    Allocation pa = alloc_a.allocate(in);
    Allocation pb = alloc_b.allocate(in);
    EXPECT_NEAR(pa.expected_accuracy, pb.expected_accuracy, 1e-9);
}

TEST(FairnessTest, StillMeetsDemand)
{
    World w = miniWorld(2, 1, 1);
    IlpAllocatorOptions opts;
    opts.fairness_weight = 20.0;
    opts.milp_time_limit_sec = 10.0;
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get(), opts);
    AllocationInput in;
    in.demand_qps = {200.0, 80.0, 40.0};
    Allocation plan = alloc.allocate(in);
    for (FamilyId f = 0; f < 3; ++f)
        EXPECT_NEAR(plan.routedFraction(f), 1.0, 1e-6) << f;
}

}  // namespace
}  // namespace proteus
