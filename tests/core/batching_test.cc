#include "core/batching.h"

#include <gtest/gtest.h>

#include <vector>

namespace proteus {
namespace {

/** Synthetic profile: latency(b) = overhead + b * per_item. */
BatchProfile
makeProfile(Duration overhead, Duration per_item, int max_batch,
            int table_size = 32)
{
    BatchProfile prof;
    for (int b = 1; b <= table_size; ++b)
        prof.latency.push_back(overhead + per_item * b);
    prof.max_batch = max_batch;
    prof.peak_qps =
        max_batch / toSeconds(prof.latencyFor(max_batch));
    return prof;
}

struct QueueFixture {
    QueryQueue queue;
    std::vector<Query> storage;

    /** Add a query that arrived at @p arrival with @p slo. */
    void
    add(Time arrival, Duration slo)
    {
        storage.reserve(64);  // stable addresses for the test sizes
        storage.push_back(Query{});
        storage.back().arrival = arrival;
        storage.back().deadline = arrival + slo;
        queue.push_back(&storage.back());
    }
};

WorkerView
view(Time now, const QueueFixture& fix, const BatchProfile& prof,
     Duration slo)
{
    WorkerView v;
    v.now = now;
    v.queue = &fix.queue;
    v.profile = &prof;
    v.slo = slo;
    return v;
}

TEST(ProteusBatchingTest, EmptyQueueDoesNothing)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    QueueFixture fix;
    ProteusBatching policy;
    BatchAction a = policy.decide(view(0, fix, prof, millis(20)));
    EXPECT_EQ(a.execute, 0);
    EXPECT_EQ(a.drop, 0);
    EXPECT_EQ(a.wake_at, kNoTime);
}

TEST(ProteusBatchingTest, FullBatchExecutesImmediately)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 4);
    QueueFixture fix;
    const Duration slo = millis(100);
    for (int i = 0; i < 6; ++i)
        fix.add(millis(i), slo);
    ProteusBatching policy;
    BatchAction a = policy.decide(view(millis(6), fix, prof, slo));
    EXPECT_EQ(a.execute, 4);  // capped at max_batch
}

TEST(ProteusBatchingTest, WaitsUntilTmaxWait)
{
    // One query, SLO comfortably far: policy must arm a timer at
    // T_exp(1) - T_process(2), not execute (non-work-conserving).
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    const Duration slo = millis(100);
    fix.add(millis(0), slo);
    ProteusBatching policy;
    BatchAction a = policy.decide(view(millis(1), fix, prof, slo));
    EXPECT_EQ(a.execute, 0);
    // T_exp(1) = 100 ms; T_process(2) = 2 + 2*3 = 8 ms.
    EXPECT_EQ(a.wake_at, millis(100) - millis(8));
}

TEST(ProteusBatchingTest, ExecutesAtTmaxWait)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    const Duration slo = millis(100);
    fix.add(millis(0), slo);
    ProteusBatching policy;
    Time t_max_wait = millis(100) - millis(8);
    BatchAction a = policy.decide(view(t_max_wait, fix, prof, slo));
    EXPECT_EQ(a.execute, 1);
    EXPECT_EQ(a.wake_at, kNoTime);
}

TEST(ProteusBatchingTest, NewArrivalShrinksWait)
{
    // Paper Fig. 3 Case 2: with q+1 queries the wait shortens because
    // T_process(q+2) > T_process(q+1).
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    const Duration slo = millis(100);
    fix.add(millis(0), slo);
    fix.add(millis(1), slo);
    ProteusBatching policy;
    BatchAction a = policy.decide(view(millis(2), fix, prof, slo));
    EXPECT_EQ(a.execute, 0);
    // T_process(3) = 2 + 3*3 = 11 ms -> wake at 100 - 11 = 89 ms.
    EXPECT_EQ(a.wake_at, millis(89));
}

TEST(ProteusBatchingTest, DropsHopelessQueries)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    // Arrived long ago: deadline already unreachable even alone.
    fix.add(millis(0), millis(10));
    fix.add(millis(100), millis(200));
    ProteusBatching policy;
    BatchAction a = policy.decide(view(millis(120), fix, prof,
                                       millis(200)));
    EXPECT_EQ(a.drop, 1);
}

TEST(ProteusBatchingTest, KeepsHopelessWhenDisabled)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    fix.add(millis(0), millis(10));
    ProteusBatching policy(/*drop_hopeless=*/false);
    BatchAction a = policy.decide(view(millis(120), fix, prof,
                                       millis(10)));
    EXPECT_EQ(a.drop, 0);
    EXPECT_EQ(a.execute, 1);  // head is already doomed: run now
}

TEST(ProteusBatchingTest, TrimsBatchWhenDecisionDelayed)
{
    // The worker was busy; by now only a smaller batch still meets
    // the head query's deadline.
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    const Duration slo = millis(30);
    for (int i = 0; i < 6; ++i)
        fix.add(millis(i), slo);
    // Head deadline: 30 ms. At t=19: latency(3)=11 -> ok;
    // latency(4)=14 -> 33 > 30. Expect batch of 3.
    ProteusBatching policy;
    BatchAction a = policy.decide(view(millis(19), fix, prof, slo));
    EXPECT_EQ(a.execute, 3);
}

TEST(ProteusBatchingTest, NoTimerInPast)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    const Duration slo = millis(100);
    fix.add(millis(0), slo);
    ProteusBatching policy;
    // Past T_max_wait(2): must execute, never arm a stale timer.
    BatchAction a = policy.decide(view(millis(95), fix, prof, slo));
    EXPECT_EQ(a.execute, 1);
    EXPECT_EQ(a.wake_at, kNoTime);
}

TEST(StaticBatchingTest, AlwaysExecutesUpToSize)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    QueueFixture fix;
    for (int i = 0; i < 3; ++i)
        fix.add(millis(i), millis(100));
    StaticBatching one(1);
    EXPECT_EQ(one.decide(view(millis(3), fix, prof, millis(100))).execute,
              1);
    StaticBatching big(10);
    EXPECT_EQ(big.decide(view(millis(3), fix, prof, millis(100))).execute,
              3);
}

TEST(StaticBatchingTest, EmptyQueueNoAction)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    QueueFixture fix;
    StaticBatching policy(1);
    EXPECT_EQ(policy.decide(view(0, fix, prof, millis(100))).execute, 0);
}

TEST(CountHopelessTest, PrefixOnly)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    fix.add(millis(0), millis(10));   // doomed at t=50
    fix.add(millis(1), millis(10));   // doomed
    fix.add(millis(48), millis(100)); // fine
    WorkerView v = view(millis(50), fix, prof, millis(100));
    EXPECT_EQ(countHopeless(v), 2);
}

}  // namespace
}  // namespace proteus
