#include "core/ilp_allocator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "solver/milp.h"
#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::paperWorld;
using testing::World;

/** Demand vector sized to the world, with per-family values. */
std::vector<double>
demandOf(const World& w, std::initializer_list<double> values)
{
    std::vector<double> d(w.registry.numFamilies(), 0.0);
    std::size_t i = 0;
    for (double v : values) {
        if (i >= d.size())
            break;
        d[i++] = v;
    }
    return d;
}

/** Checks the paper's constraints (Eqs. 1-6) on a plan. */
void
checkPlanInvariants(const World& w, const Allocation& plan,
                    const std::vector<double>& demand)
{
    // Eq. 1: one variant per device (by construction of hosting).
    ASSERT_EQ(plan.hosting.size(), w.cluster.numDevices());
    // Eq. 2: routed fraction per family <= 1.
    for (FamilyId f = 0; f < w.registry.numFamilies(); ++f) {
        EXPECT_LE(plan.routedFraction(f), 1.0 + 1e-9);
        // Eq. 3: every routed device hosts a variant of the family.
        for (const DeviceShare& s : plan.routing[f]) {
            ASSERT_TRUE(plan.hosting[s.device].has_value());
            EXPECT_EQ(w.registry.familyOf(*plan.hosting[s.device]), f);
            EXPECT_GT(s.weight, 0.0);
        }
    }
    // Eq. 5-ish: per-device assigned QPS within its peak capacity.
    for (FamilyId f = 0; f < w.registry.numFamilies(); ++f) {
        for (const DeviceShare& s : plan.routing[f]) {
            DeviceTypeId t = w.cluster.device(s.device).type;
            double peak =
                w.profiles->get(*plan.hosting[s.device], t).peak_qps;
            EXPECT_LE(s.weight * demand[f], peak * (1.0 + 1e-6))
                << "device " << s.device;
        }
    }
}

TEST(IlpAllocatorTest, MeetsFeasibleDemandExactly)
{
    World w = miniWorld(4, 2, 2);
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {100.0, 50.0, 30.0});
    Allocation plan = alloc.allocate(in);
    checkPlanInvariants(w, plan, in.demand_qps);
    for (FamilyId f = 0; f < 3; ++f)
        EXPECT_NEAR(plan.routedFraction(f), 1.0, 1e-6) << f;
    EXPECT_DOUBLE_EQ(plan.planned_fraction, 1.0);
}

TEST(IlpAllocatorTest, MaximizesAccuracyAtLowDemand)
{
    // With trivial demand the optimum hosts the most accurate
    // variants, so expected accuracy ~ 100.
    World w = miniWorld(4, 2, 2);
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {2.0, 1.0, 1.0});
    Allocation plan = alloc.allocate(in);
    EXPECT_GT(plan.expected_accuracy, 99.0);
}

TEST(IlpAllocatorTest, ScalesAccuracyDownUnderLoad)
{
    World w = miniWorld(2, 1, 1);
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput lo;
    lo.demand_qps = demandOf(w, {5.0, 2.0, 2.0});
    AllocationInput hi;
    hi.demand_qps = demandOf(w, {400.0, 150.0, 150.0});
    double acc_lo = alloc.allocate(lo).expected_accuracy;
    IlpAllocator alloc2(&w.registry, &w.cluster, w.profiles.get());
    double acc_hi = alloc2.allocate(hi).expected_accuracy;
    EXPECT_LT(acc_hi, acc_lo);
    EXPECT_GE(acc_hi, 80.0);
}

TEST(IlpAllocatorTest, BacksOffWhenOverloaded)
{
    World w = miniWorld(1, 0, 1);
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {1e6, 1e6, 1e6});
    Allocation plan = alloc.allocate(in);
    EXPECT_LT(plan.planned_fraction, 1.0);
    EXPECT_GT(alloc.lastStats().backoff_steps, 0);
    // Still a valid plan: weights <= 1 etc.
    checkPlanInvariants(w, plan, in.demand_qps);
}

TEST(IlpAllocatorTest, ZeroDemandHostsNothing)
{
    World w = miniWorld();
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {0.0, 0.0, 0.0});
    Allocation plan = alloc.allocate(in);
    for (const auto& h : plan.hosting)
        EXPECT_FALSE(h.has_value());
}

TEST(IlpAllocatorTest, ChurnMinimizingExpansionKeepsDevices)
{
    World w = miniWorld(4, 2, 2);
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {100.0, 40.0, 30.0});
    Allocation first = alloc.allocate(in);
    // Same demand again, current plan supplied: nothing should move.
    AllocationInput in2 = in;
    in2.current = &first;
    Allocation second = alloc.allocate(in2);
    int moved = 0;
    for (DeviceId d = 0; d < w.cluster.numDevices(); ++d)
        moved += first.hosting[d] != second.hosting[d];
    EXPECT_EQ(moved, 0);
}

TEST(IlpAllocatorTest, FixMostAccurateAblation)
{
    World w = miniWorld(4, 2, 2);
    IlpAllocatorOptions opts;
    opts.fix_most_accurate = true;
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get(), opts);
    AllocationInput in;
    in.demand_qps = demandOf(w, {50.0, 20.0, 10.0});
    Allocation plan = alloc.allocate(in);
    for (DeviceId d = 0; d < w.cluster.numDevices(); ++d) {
        if (!plan.hosting[d])
            continue;
        VariantId v = *plan.hosting[d];
        EXPECT_EQ(v, w.registry.mostAccurate(w.registry.familyOf(v)));
    }
}

TEST(IlpAllocatorTest, UniformAssignmentAblation)
{
    World w = miniWorld(4, 2, 2);
    IlpAllocatorOptions opts;
    opts.uniform_assignment = true;
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get(), opts);
    AllocationInput in;
    in.demand_qps = demandOf(w, {200.0, 50.0, 30.0});
    Allocation plan = alloc.allocate(in);
    for (FamilyId f = 0; f < w.registry.numFamilies(); ++f) {
        if (plan.routing[f].size() < 2)
            continue;
        double first = plan.routing[f][0].weight;
        for (const auto& s : plan.routing[f])
            EXPECT_NEAR(s.weight, first, 1e-9);
    }
}

TEST(IlpAllocatorTest, VariantFilterRestrictsSelection)
{
    World w = miniWorld(4, 2, 2);
    IlpAllocatorOptions opts;
    VariantId only = w.registry.leastAccurate(0);
    opts.variant_filter = [&w, only](VariantId v) {
        return w.registry.familyOf(v) != 0 || v == only;
    };
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get(), opts);
    AllocationInput in;
    in.demand_qps = demandOf(w, {50.0, 20.0, 10.0});
    Allocation plan = alloc.allocate(in);
    for (const auto& h : plan.hosting) {
        if (h && w.registry.familyOf(*h) == 0) {
            EXPECT_EQ(*h, only);
        }
    }
}

TEST(IlpAllocatorTest, AggregatedMatchesPerDeviceFormulation)
{
    // On a small instance, the device-type aggregation must reach the
    // same optimal objective as the verbatim per-device MILP of §4.
    World w = miniWorld(2, 1, 1);
    std::vector<double> demand = demandOf(w, {60.0, 25.0, 0.0});

    IlpAllocatorOptions opts;
    opts.keep_plan_hysteresis = 0.0;
    opts.churn_damping = 0.0;
    opts.milp_gap = 1e-7;
    opts.milp_time_limit_sec = 30.0;
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get(), opts);
    AllocationInput in;
    in.demand_qps = demand;
    Allocation plan = alloc.allocate(in);

    LinearProgram per_device =
        buildPerDeviceMilp(w.registry, w.cluster, *w.profiles, demand);
    MilpSolver::Options mo;
    mo.time_limit_sec = 60.0;
    Solution ref = MilpSolver(mo).solve(per_device);
    ASSERT_TRUE(ref.hasSolution());

    // Compare accuracy-weighted served QPS. The aggregated model has
    // a tiny replica penalty; tolerate it.
    double plan_obj = plan.expected_accuracy * plan.planned_qps;
    EXPECT_NEAR(plan_obj, ref.objective, ref.objective * 0.01);
}

TEST(IlpAllocatorTest, PaperScaleSolvesFast)
{
    World w = paperWorld();
    IlpAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    std::vector<double> demand(w.registry.numFamilies(), 50.0);
    AllocationInput in;
    in.demand_qps = demand;
    Allocation plan = alloc.allocate(in);
    EXPECT_GT(plan.expected_accuracy, 90.0);
    EXPECT_LT(alloc.lastStats().solve_seconds, 5.0);
}

}  // namespace
}  // namespace proteus
