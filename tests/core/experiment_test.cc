#include "core/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace proteus {
namespace {

JsonValue
parse(const std::string& text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, &v, &error)) << error;
    return v;
}

TEST(ExperimentTest, AlgorithmNameMapping)
{
    EXPECT_EQ(allocatorKindFromName("ilp"), AllocatorKind::ProteusIlp);
    EXPECT_EQ(allocatorKindFromName("infaas_v2"),
              AllocatorKind::InfaasAccuracy);
    EXPECT_EQ(allocatorKindFromName("clipper_ht"),
              AllocatorKind::ClipperHT);
    EXPECT_EQ(allocatorKindFromName("clipper_ha"),
              AllocatorKind::ClipperHA);
    EXPECT_EQ(allocatorKindFromName("sommelier"),
              AllocatorKind::Sommelier);
    EXPECT_EQ(batchingKindFromName("accscale"), BatchingKind::Proteus);
    EXPECT_EQ(batchingKindFromName("aimd"), BatchingKind::ClipperAimd);
    EXPECT_EQ(batchingKindFromName("nexus"),
              BatchingKind::NexusEarlyDrop);
    EXPECT_EQ(batchingKindFromName("static"), BatchingKind::StaticOne);
}

TEST(ExperimentTest, LoadsFullConfig)
{
    ExperimentSpec spec = loadExperiment(parse(R"({
        "model_allocation": "infaas_v2",
        "batching": "nexus",
        "slo_multiplier": 2.5,
        "control_period_sec": 15,
        "seed": 9,
        "cluster": {"cpu": 2, "gtx1080ti": 1, "v100": 1},
        "zoo": "mini",
        "workload": {
            "kind": "steady", "duration_sec": 10, "qps": 50,
            "process": "poisson"
        }
    })"));
    EXPECT_EQ(spec.config.allocator, AllocatorKind::InfaasAccuracy);
    EXPECT_EQ(spec.config.batching, BatchingKind::NexusEarlyDrop);
    EXPECT_DOUBLE_EQ(spec.config.slo_multiplier, 2.5);
    EXPECT_EQ(spec.config.control_period, seconds(15.0));
    EXPECT_EQ(spec.config.seed, 9u);
    EXPECT_EQ(spec.cluster.numDevices(), 4u);
    EXPECT_EQ(spec.registry.numFamilies(), 3u);
    EXPECT_GT(spec.trace.size(), 200u);
}

TEST(ExperimentTest, DefaultsMatchPaperSetup)
{
    ExperimentSpec spec = loadExperiment(parse(R"({
        "workload": {"kind": "steady", "duration_sec": 5, "qps": 10}
    })"));
    EXPECT_EQ(spec.config.allocator, AllocatorKind::ProteusIlp);
    EXPECT_EQ(spec.config.batching, BatchingKind::Proteus);
    EXPECT_EQ(spec.cluster.numDevices(), 40u);   // paper cluster
    EXPECT_EQ(spec.registry.numFamilies(), 9u);  // Table 3
}

TEST(ExperimentTest, WorkloadKinds)
{
    ExperimentSpec diurnal = loadExperiment(parse(R"({
        "zoo": "mini", "cluster": {"cpu": 1},
        "workload": {"kind": "diurnal", "duration_sec": 20,
                     "base_qps": 30, "amplitude_qps": 10}
    })"));
    EXPECT_GT(diurnal.trace.size(), 100u);

    ExperimentSpec burst = loadExperiment(parse(R"({
        "zoo": "mini", "cluster": {"cpu": 1},
        "workload": {"kind": "burst", "duration_sec": 20,
                     "low_qps": 10, "high_qps": 50, "phase_sec": 5}
    })"));
    EXPECT_GT(burst.trace.size(), 100u);
}

TEST(ExperimentTest, EndToEndRunFromConfig)
{
    ExperimentSpec spec = loadExperiment(parse(R"({
        "zoo": "mini",
        "cluster": {"cpu": 2, "v100": 1},
        "workload": {"kind": "steady", "duration_sec": 20, "qps": 30}
    })"));
    RunResult r = runExperiment(&spec);
    EXPECT_EQ(r.summary.arrivals, spec.trace.size());
    EXPECT_EQ(r.summary.arrivals,
              r.summary.served + r.summary.served_late +
                  r.summary.dropped);
}

TEST(ExperimentTest, TraceCsvRoundTrip)
{
    Trace t({{1000, 0}, {2000, 1}, {1500, 2}});
    std::stringstream ss;
    t.writeCsv(ss);
    Trace back = Trace::readCsv(ss);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back.events()[0].at, 1000);
    EXPECT_EQ(back.events()[1].at, 1500);
    EXPECT_EQ(back.events()[1].family, 2u);
    EXPECT_EQ(back.events()[2].at, 2000);
}

TEST(ExperimentTest, TraceCsvWithoutHeader)
{
    std::stringstream ss("100,0\n200,1\n");
    Trace t = Trace::readCsv(ss);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.events()[1].family, 1u);
}

}  // namespace
}  // namespace proteus
