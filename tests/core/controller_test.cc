#include "core/controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulator.h"

namespace proteus {
namespace {

/** Scripted allocator for controller tests. */
class FakeAllocator : public Allocator
{
  public:
    explicit FakeAllocator(Duration delay = 0) : delay_(delay) {}

    Allocation
    allocate(const AllocationInput& input) override
    {
        ++calls;
        last_demand = input.demand_qps;
        last_down = input.device_down;
        Allocation plan;
        plan.hosting.assign(1, std::nullopt);
        plan.routing.assign(input.demand_qps.size(), {});
        return plan;
    }

    Duration decisionDelay() const override { return delay_; }
    const char* name() const override { return "fake"; }

    int calls = 0;
    std::vector<double> last_demand;
    std::vector<char> last_down;

  private:
    Duration delay_;
};

TEST(ControllerTest, InitialAllocationAppliesImmediately)
{
    Simulator sim;
    FakeAllocator alloc;
    int applies = 0;
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) { ++applies; });
    ctl.start({5.0});
    EXPECT_EQ(alloc.calls, 1);
    EXPECT_EQ(applies, 1);
    EXPECT_DOUBLE_EQ(alloc.last_demand[0], 5.0);
}

TEST(ControllerTest, PeriodicReallocation)
{
    Simulator sim;
    FakeAllocator alloc;
    int applies = 0;
    ControllerOptions opts;
    opts.period = seconds(30.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) { ++applies; }, opts);
    ctl.start({1.0});
    sim.run(seconds(95.0));
    // t=0 (initial), 30, 60, 90.
    EXPECT_EQ(applies, 4);
    EXPECT_EQ(ctl.reallocations(), 4);
}

TEST(ControllerTest, DecisionDelayDefersApply)
{
    Simulator sim;
    FakeAllocator alloc(seconds(4.0));
    Time applied_at = kNoTime;
    ControllerOptions opts;
    opts.period = seconds(30.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) { applied_at = sim.now(); },
                   opts);
    ctl.start({1.0});
    applied_at = kNoTime;
    sim.run(seconds(40.0));
    // Periodic trigger at 30, applied at 34.
    EXPECT_EQ(applied_at, seconds(34.0));
}

TEST(ControllerTest, BurstRequestDebounced)
{
    Simulator sim;
    FakeAllocator alloc;
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(5.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});
    // Ten alarms in two seconds: only the first may pass (and even it
    // is within min_interval of the initial allocation).
    for (int i = 0; i < 10; ++i) {
        sim.scheduleAt(millis(200 * i),
                       [&ctl] { ctl.requestReallocation(); });
    }
    sim.run(seconds(3.0));
    EXPECT_EQ(alloc.calls, 1);  // just the initial one
    // After the window passes, a request goes through.
    sim.scheduleAt(seconds(10.0), [&ctl] { ctl.requestReallocation(); });
    sim.run(seconds(11.0));
    EXPECT_EQ(alloc.calls, 2);
}

TEST(ControllerTest, DemandComesFromEstimator)
{
    Simulator sim;
    FakeAllocator alloc;
    double current = 7.0;
    ControllerOptions opts;
    opts.period = seconds(10.0);
    Controller ctl(&sim, &alloc,
                   [&] { return std::vector<double>{current}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});
    current = 42.0;
    sim.run(seconds(15.0));
    EXPECT_DOUBLE_EQ(alloc.last_demand[0], 42.0);
}

TEST(ControllerTest, DebounceBoundaryIsExact)
{
    Simulator sim;
    FakeAllocator alloc;
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(5.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});  // call 1 at t=0
    // Exactly at the boundary the alarm passes; just inside it does
    // not (half-open window [last_start, last_start + min_interval)).
    sim.scheduleAt(seconds(4.999999),
                   [&ctl] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(5.0), [&ctl] { ctl.requestReallocation(); });
    sim.run(seconds(6.0));
    EXPECT_EQ(alloc.calls, 2);
}

TEST(ControllerTest, CapacityChangeBypassesDebounce)
{
    Simulator sim;
    FakeAllocator alloc;
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(5.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});  // call 1 at t=0
    // A burst alarm at t=1 is debounced; a failure alarm at t=2 is
    // not — dead capacity must be replanned immediately.
    sim.scheduleAt(seconds(1.0), [&ctl] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(2.0), [&ctl] { ctl.notifyCapacityChange(); });
    sim.run(seconds(3.0));
    EXPECT_EQ(alloc.calls, 2);
}

TEST(ControllerTest, CapacityChangeWhileDecisionPendingResolvesAfter)
{
    Simulator sim;
    FakeAllocator alloc(seconds(8.0));
    std::vector<Time> applies;
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(0.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) { applies.push_back(sim.now()); },
                   opts);
    ctl.start({1.0});  // call 1, applied instantly at t=0
    // A solve starts at t=1 (applies at t=9). The crash at t=4 cannot
    // abort it, but must queue a fresh solve right after the stale
    // plan applies: calls at t=0, t=1 and t=9 -> applies 0, 9, 17.
    sim.scheduleAt(seconds(1.0), [&ctl] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(4.0), [&ctl] { ctl.notifyCapacityChange(); });
    sim.run(seconds(30.0));
    EXPECT_EQ(alloc.calls, 3);
    ASSERT_EQ(applies.size(), 3u);
    EXPECT_EQ(applies[0], 0);
    EXPECT_EQ(applies[1], seconds(9.0));
    EXPECT_EQ(applies[2], seconds(17.0));
}

TEST(ControllerTest, BurstAlarmsWhilePendingCoalesceIntoNothing)
{
    Simulator sim;
    FakeAllocator alloc(seconds(8.0));
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(0.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});
    // Unlike notifyCapacityChange, burst alarms during a pending
    // decision are simply dropped (the fresh plan supersedes them).
    sim.scheduleAt(seconds(1.0), [&ctl] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(4.0), [&ctl] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(5.0), [&ctl] { ctl.requestReallocation(); });
    sim.run(seconds(30.0));
    EXPECT_EQ(alloc.calls, 2);
}

TEST(ControllerTest, AvailabilityProbeForwardedToAllocator)
{
    Simulator sim;
    FakeAllocator alloc;
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {});
    std::vector<char> mask = {0, 1, 0};
    ctl.setAvailabilityProbe([&mask] { return mask; });
    ctl.start({1.0});
    EXPECT_EQ(alloc.last_down, mask);
    mask = {1, 1, 0};
    sim.scheduleAt(seconds(1.0), [&ctl] { ctl.notifyCapacityChange(); });
    sim.run(seconds(2.0));
    EXPECT_EQ(alloc.last_down, mask);
}

TEST(ControllerTest, PlanApplyOrderingWithDelay)
{
    Simulator sim;
    FakeAllocator alloc(seconds(4.0));
    std::vector<int> applied_calls;
    ControllerOptions opts;
    opts.period = seconds(30.0);
    opts.min_interval = seconds(0.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) {
                       applied_calls.push_back(alloc.calls);
                   },
                   opts);
    ctl.start({1.0});
    sim.run(seconds(65.0));
    // Initial applies instantly; periodic solves at 30 and 60 apply at
    // 34 and 64, strictly in decision order.
    ASSERT_EQ(applied_calls.size(), 3u);
    EXPECT_TRUE(std::is_sorted(applied_calls.begin(),
                               applied_calls.end()));
    EXPECT_EQ(ctl.reallocations(), 3);
}

TEST(ControllerTest, NoOverlappingDecisions)
{
    Simulator sim;
    FakeAllocator alloc(seconds(8.0));
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(0.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});
    // Two requests while the first decision is still pending.
    sim.scheduleAt(seconds(1.0), [&] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(2.0), [&] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(3.0), [&] { ctl.requestReallocation(); });
    sim.run(seconds(20.0));
    EXPECT_EQ(alloc.calls, 2);  // initial + one (others coalesced)
}

}  // namespace
}  // namespace proteus
