#include "core/controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace proteus {
namespace {

/** Scripted allocator for controller tests. */
class FakeAllocator : public Allocator
{
  public:
    explicit FakeAllocator(Duration delay = 0) : delay_(delay) {}

    Allocation
    allocate(const AllocationInput& input) override
    {
        ++calls;
        last_demand = input.demand_qps;
        Allocation plan;
        plan.hosting.assign(1, std::nullopt);
        plan.routing.assign(input.demand_qps.size(), {});
        return plan;
    }

    Duration decisionDelay() const override { return delay_; }
    const char* name() const override { return "fake"; }

    int calls = 0;
    std::vector<double> last_demand;

  private:
    Duration delay_;
};

TEST(ControllerTest, InitialAllocationAppliesImmediately)
{
    Simulator sim;
    FakeAllocator alloc;
    int applies = 0;
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) { ++applies; });
    ctl.start({5.0});
    EXPECT_EQ(alloc.calls, 1);
    EXPECT_EQ(applies, 1);
    EXPECT_DOUBLE_EQ(alloc.last_demand[0], 5.0);
}

TEST(ControllerTest, PeriodicReallocation)
{
    Simulator sim;
    FakeAllocator alloc;
    int applies = 0;
    ControllerOptions opts;
    opts.period = seconds(30.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) { ++applies; }, opts);
    ctl.start({1.0});
    sim.run(seconds(95.0));
    // t=0 (initial), 30, 60, 90.
    EXPECT_EQ(applies, 4);
    EXPECT_EQ(ctl.reallocations(), 4);
}

TEST(ControllerTest, DecisionDelayDefersApply)
{
    Simulator sim;
    FakeAllocator alloc(seconds(4.0));
    Time applied_at = kNoTime;
    ControllerOptions opts;
    opts.period = seconds(30.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [&](const Allocation&) { applied_at = sim.now(); },
                   opts);
    ctl.start({1.0});
    applied_at = kNoTime;
    sim.run(seconds(40.0));
    // Periodic trigger at 30, applied at 34.
    EXPECT_EQ(applied_at, seconds(34.0));
}

TEST(ControllerTest, BurstRequestDebounced)
{
    Simulator sim;
    FakeAllocator alloc;
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(5.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});
    // Ten alarms in two seconds: only the first may pass (and even it
    // is within min_interval of the initial allocation).
    for (int i = 0; i < 10; ++i) {
        sim.scheduleAt(millis(200 * i),
                       [&ctl] { ctl.requestReallocation(); });
    }
    sim.run(seconds(3.0));
    EXPECT_EQ(alloc.calls, 1);  // just the initial one
    // After the window passes, a request goes through.
    sim.scheduleAt(seconds(10.0), [&ctl] { ctl.requestReallocation(); });
    sim.run(seconds(11.0));
    EXPECT_EQ(alloc.calls, 2);
}

TEST(ControllerTest, DemandComesFromEstimator)
{
    Simulator sim;
    FakeAllocator alloc;
    double current = 7.0;
    ControllerOptions opts;
    opts.period = seconds(10.0);
    Controller ctl(&sim, &alloc,
                   [&] { return std::vector<double>{current}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});
    current = 42.0;
    sim.run(seconds(15.0));
    EXPECT_DOUBLE_EQ(alloc.last_demand[0], 42.0);
}

TEST(ControllerTest, NoOverlappingDecisions)
{
    Simulator sim;
    FakeAllocator alloc(seconds(8.0));
    ControllerOptions opts;
    opts.period = seconds(1000.0);
    opts.min_interval = seconds(0.0);
    Controller ctl(&sim, &alloc, [] { return std::vector<double>{1.0}; },
                   [](const Allocation&) {}, opts);
    ctl.start({1.0});
    // Two requests while the first decision is still pending.
    sim.scheduleAt(seconds(1.0), [&] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(2.0), [&] { ctl.requestReallocation(); });
    sim.scheduleAt(seconds(3.0), [&] { ctl.requestReallocation(); });
    sim.run(seconds(20.0));
    EXPECT_EQ(alloc.calls, 2);  // initial + one (others coalesced)
}

}  // namespace
}  // namespace proteus
