#include "core/worker.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/batching.h"
#include "sim/simulator.h"
#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::World;

/** Records finished queries. */
class Recorder : public QueryObserver
{
  public:
    void onArrival(const Query&) override { ++arrivals; }
    void
    onFinished(const Query& q) override
    {
        finished.push_back(q);
    }
    int arrivals = 0;
    std::vector<Query> finished;
};

struct WorkerFixture {
    WorkerFixture()
        : world(miniWorld()),
          worker(&sim, &world.cluster, /*device=*/6,  // first v100
                 &world.registry, world.cost.get(), world.profiles.get(),
                 &rec, nullptr)
    {
        // Device 6 is the first V100 in the 4 cpu + 2 gtx + 2 v100
        // mini world.
        EXPECT_EQ(world.cluster.device(6).type, world.types.v100);
        worker.setBatchingPolicy(std::make_unique<ProteusBatching>());
    }

    Query*
    makeQuery(FamilyId family, Time arrival)
    {
        arena.push_back(Query{});
        Query& q = arena.back();
        q.id = arena.size();
        q.family = family;
        q.arrival = arrival;
        q.deadline = arrival + world.profiles->slo(family);
        return &q;
    }

    World world;
    Simulator sim;
    Recorder rec;
    Worker worker;
    std::deque<Query> arena;
};

TEST(WorkerTest, ServesQueryWithinSlo)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.mostAccurate(resnet);
    fix.worker.hostVariant(v, /*instant=*/true);
    ASSERT_TRUE(fix.worker.ready());

    fix.sim.scheduleAt(0, [&] {
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    const Query& q = fix.rec.finished[0];
    EXPECT_EQ(q.status, QueryStatus::Served);
    EXPECT_LE(q.completion, q.deadline);
    EXPECT_DOUBLE_EQ(q.accuracy, 100.0);
    EXPECT_EQ(q.served_by, 6u);
    EXPECT_EQ(fix.worker.served(), 1u);
}

TEST(WorkerTest, BatchesQueuedQueries)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.leastAccurate(resnet);
    fix.worker.hostVariant(v, true);
    for (int i = 0; i < 8; ++i) {
        fix.sim.scheduleAt(millis(i), [&fix, resnet, i] {
            fix.worker.enqueue(fix.makeQuery(resnet, millis(i)));
        });
    }
    fix.sim.run();
    EXPECT_EQ(fix.rec.finished.size(), 8u);
    // The non-work-conserving policy should have grouped them into
    // far fewer batches than queries.
    EXPECT_LT(fix.worker.batches(), 8u);
    EXPECT_GT(fix.worker.meanBatchSize(), 1.0);
}

TEST(WorkerTest, UnhostedWorkerDropsWithoutRequeue)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    fix.sim.scheduleAt(0, [&] {
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    EXPECT_EQ(fix.rec.finished[0].status, QueryStatus::Dropped);
}

TEST(WorkerTest, LoadDelayPostponesServing)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.mostAccurate(resnet);
    Duration load = fix.world.cost->loadTime(fix.world.types.v100, v);
    fix.sim.scheduleAt(0, [&] {
        fix.worker.hostVariant(v);  // not instant
        EXPECT_FALSE(fix.worker.ready());
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    EXPECT_GE(fix.rec.finished[0].completion, load);
}

TEST(WorkerTest, SwapRequeuesQueuedQueries)
{
    WorkerFixture fix;
    std::vector<Query*> requeued;
    Worker worker(&fix.sim, &fix.world.cluster, 7, &fix.world.registry,
                  fix.world.cost.get(), fix.world.profiles.get(),
                  &fix.rec, [&](Query* q) { requeued.push_back(q); });
    worker.setBatchingPolicy(std::make_unique<ProteusBatching>());
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    FamilyId mobilenet = fix.world.registry.findFamily("mobilenet");
    VariantId rv = fix.world.registry.mostAccurate(resnet);
    VariantId mv = fix.world.registry.mostAccurate(mobilenet);
    worker.hostVariant(rv, true);
    fix.sim.scheduleAt(0, [&] {
        worker.enqueue(fix.makeQuery(resnet, 0));
        worker.enqueue(fix.makeQuery(resnet, 0));
        // Swap before the batch timer fires: everything requeued.
        worker.hostVariant(mv, true);
    });
    fix.sim.run();
    EXPECT_EQ(requeued.size(), 2u);
    EXPECT_EQ(worker.queueLength(), 0u);
}

TEST(WorkerTest, SupersededLoadIsIgnored)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId a = fix.world.registry.leastAccurate(resnet);
    VariantId b = fix.world.registry.mostAccurate(resnet);
    fix.sim.scheduleAt(0, [&] { fix.worker.hostVariant(a); });
    fix.sim.scheduleAt(millis(1), [&] { fix.worker.hostVariant(b); });
    fix.sim.run();
    EXPECT_TRUE(fix.worker.ready());
    EXPECT_EQ(fix.worker.hostedVariant(), b);
}

TEST(WorkerTest, LateExecutionMarksServedLate)
{
    WorkerFixture fix;
    FamilyId mobilenet = fix.world.registry.findFamily("mobilenet");
    // Most accurate mobilenet on CPU is slow relative to the 20 ms
    // SLO; use a CPU worker so a single execution exceeds it.
    Worker cpu_worker(&fix.sim, &fix.world.cluster, 0,
                      &fix.world.registry, fix.world.cost.get(),
                      fix.world.profiles.get(), &fix.rec, nullptr);
    cpu_worker.setBatchingPolicy(
        std::make_unique<ProteusBatching>(/*drop_hopeless=*/false));
    VariantId v = fix.world.registry.mostAccurate(mobilenet);
    cpu_worker.hostVariant(v, true);
    const BatchProfile& prof =
        fix.world.profiles->get(v, fix.world.types.cpu);
    if (prof.usable())
        GTEST_SKIP() << "variant unexpectedly meets the SLO on CPU";
    fix.sim.scheduleAt(0, [&] {
        cpu_worker.enqueue(fix.makeQuery(mobilenet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    // Unusable profile: the worker drops rather than serving late.
    EXPECT_EQ(fix.rec.finished[0].status, QueryStatus::Dropped);
}

TEST(WorkerTest, BusyTimeAccumulates)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.leastAccurate(resnet);
    fix.worker.hostVariant(v, true);
    fix.sim.scheduleAt(0, [&] {
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    EXPECT_GT(fix.worker.busyTime(), 0);
}

TEST(WorkerTest, JitterPreservesDeterminismPerSeed)
{
    auto run_once = [](std::uint64_t seed) {
        World w = miniWorld();
        Simulator sim;
        Recorder rec;
        Worker worker(&sim, &w.cluster, 6, &w.registry, w.cost.get(),
                      w.profiles.get(), &rec, nullptr, 0.1, seed);
        worker.setBatchingPolicy(std::make_unique<ProteusBatching>());
        FamilyId resnet = w.registry.findFamily("resnet");
        VariantId v = w.registry.leastAccurate(resnet);
        worker.hostVariant(v, true);
        std::deque<Query> arena;
        for (int i = 0; i < 5; ++i) {
            sim.scheduleAt(millis(10 * i), [&, i] {
                arena.push_back(Query{});
                arena.back().family = resnet;
                arena.back().arrival = sim.now();
                arena.back().deadline = sim.now() + w.profiles->slo(resnet);
                worker.enqueue(&arena.back());
            });
        }
        sim.run();
        Time last = 0;
        for (const auto& q : rec.finished)
            last = std::max(last, q.completion);
        return last;
    };
    EXPECT_EQ(run_once(1), run_once(1));
    EXPECT_NE(run_once(1), run_once(2));
}

}  // namespace
}  // namespace proteus
