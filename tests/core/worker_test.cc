#include "core/worker.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/batching.h"
#include "sim/simulator.h"
#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::World;

/** Records finished queries. */
class Recorder : public QueryObserver
{
  public:
    void onArrival(const Query&) override { ++arrivals; }
    void
    onFinished(const Query& q) override
    {
        finished.push_back(q);
    }
    int arrivals = 0;
    std::vector<Query> finished;
};

struct WorkerFixture {
    WorkerFixture()
        : world(miniWorld()),
          worker(&sim, &world.cluster, /*device=*/6,  // first v100
                 &world.registry, world.cost.get(), world.profiles.get(),
                 &rec, nullptr)
    {
        // Device 6 is the first V100 in the 4 cpu + 2 gtx + 2 v100
        // mini world.
        EXPECT_EQ(world.cluster.device(6).type, world.types.v100);
        worker.setBatchingPolicy(std::make_unique<ProteusBatching>());
    }

    Query*
    makeQuery(FamilyId family, Time arrival)
    {
        arena.push_back(Query{});
        Query& q = arena.back();
        q.id = arena.size();
        q.family = family;
        q.arrival = arrival;
        q.deadline = arrival + world.profiles->slo(family);
        return &q;
    }

    World world;
    Simulator sim;
    Recorder rec;
    Worker worker;
    std::deque<Query> arena;
};

TEST(WorkerTest, ServesQueryWithinSlo)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.mostAccurate(resnet);
    fix.worker.hostVariant(v, /*instant=*/true);
    ASSERT_TRUE(fix.worker.ready());

    fix.sim.scheduleAt(0, [&] {
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    const Query& q = fix.rec.finished[0];
    EXPECT_EQ(q.status, QueryStatus::Served);
    EXPECT_LE(q.completion, q.deadline);
    EXPECT_DOUBLE_EQ(q.accuracy, 100.0);
    EXPECT_EQ(q.served_by, 6u);
    EXPECT_EQ(fix.worker.served(), 1u);
}

TEST(WorkerTest, BatchesQueuedQueries)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.leastAccurate(resnet);
    fix.worker.hostVariant(v, true);
    for (int i = 0; i < 8; ++i) {
        fix.sim.scheduleAt(millis(i), [&fix, resnet, i] {
            fix.worker.enqueue(fix.makeQuery(resnet, millis(i)));
        });
    }
    fix.sim.run();
    EXPECT_EQ(fix.rec.finished.size(), 8u);
    // The non-work-conserving policy should have grouped them into
    // far fewer batches than queries.
    EXPECT_LT(fix.worker.batches(), 8u);
    EXPECT_GT(fix.worker.meanBatchSize(), 1.0);
}

TEST(WorkerTest, UnhostedWorkerDropsWithoutRequeue)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    fix.sim.scheduleAt(0, [&] {
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    EXPECT_EQ(fix.rec.finished[0].status, QueryStatus::Dropped);
}

TEST(WorkerTest, LoadDelayPostponesServing)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.mostAccurate(resnet);
    Duration load = fix.world.cost->loadTime(fix.world.types.v100, v);
    fix.sim.scheduleAt(0, [&] {
        fix.worker.hostVariant(v);  // not instant
        EXPECT_FALSE(fix.worker.ready());
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    EXPECT_GE(fix.rec.finished[0].completion, load);
}

TEST(WorkerTest, SwapRequeuesQueuedQueries)
{
    WorkerFixture fix;
    std::vector<Query*> requeued;
    Worker worker(&fix.sim, &fix.world.cluster, 7, &fix.world.registry,
                  fix.world.cost.get(), fix.world.profiles.get(),
                  &fix.rec, [&](Query* q) { requeued.push_back(q); });
    worker.setBatchingPolicy(std::make_unique<ProteusBatching>());
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    FamilyId mobilenet = fix.world.registry.findFamily("mobilenet");
    VariantId rv = fix.world.registry.mostAccurate(resnet);
    VariantId mv = fix.world.registry.mostAccurate(mobilenet);
    worker.hostVariant(rv, true);
    fix.sim.scheduleAt(0, [&] {
        worker.enqueue(fix.makeQuery(resnet, 0));
        worker.enqueue(fix.makeQuery(resnet, 0));
        // Swap before the batch timer fires: everything requeued.
        worker.hostVariant(mv, true);
    });
    fix.sim.run();
    EXPECT_EQ(requeued.size(), 2u);
    EXPECT_EQ(worker.queueLength(), 0u);
}

TEST(WorkerTest, SupersededLoadIsIgnored)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId a = fix.world.registry.leastAccurate(resnet);
    VariantId b = fix.world.registry.mostAccurate(resnet);
    fix.sim.scheduleAt(0, [&] { fix.worker.hostVariant(a); });
    fix.sim.scheduleAt(millis(1), [&] { fix.worker.hostVariant(b); });
    fix.sim.run();
    EXPECT_TRUE(fix.worker.ready());
    EXPECT_EQ(fix.worker.hostedVariant(), b);
}

TEST(WorkerTest, LateExecutionMarksServedLate)
{
    WorkerFixture fix;
    FamilyId mobilenet = fix.world.registry.findFamily("mobilenet");
    // Most accurate mobilenet on CPU is slow relative to the 20 ms
    // SLO; use a CPU worker so a single execution exceeds it.
    Worker cpu_worker(&fix.sim, &fix.world.cluster, 0,
                      &fix.world.registry, fix.world.cost.get(),
                      fix.world.profiles.get(), &fix.rec, nullptr);
    cpu_worker.setBatchingPolicy(
        std::make_unique<ProteusBatching>(/*drop_hopeless=*/false));
    VariantId v = fix.world.registry.mostAccurate(mobilenet);
    cpu_worker.hostVariant(v, true);
    const BatchProfile& prof =
        fix.world.profiles->get(v, fix.world.types.cpu);
    if (prof.usable())
        GTEST_SKIP() << "variant unexpectedly meets the SLO on CPU";
    fix.sim.scheduleAt(0, [&] {
        cpu_worker.enqueue(fix.makeQuery(mobilenet, 0));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    // Unusable profile: the worker drops rather than serving late.
    EXPECT_EQ(fix.rec.finished[0].status, QueryStatus::Dropped);
}

TEST(WorkerTest, BusyTimeAccumulates)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.leastAccurate(resnet);
    fix.worker.hostVariant(v, true);
    fix.sim.scheduleAt(0, [&] {
        fix.worker.enqueue(fix.makeQuery(resnet, 0));
    });
    fix.sim.run();
    EXPECT_GT(fix.worker.busyTime(), 0);
}

TEST(WorkerTest, JitterPreservesDeterminismPerSeed)
{
    auto run_once = [](std::uint64_t seed) {
        World w = miniWorld();
        Simulator sim;
        Recorder rec;
        Worker worker(&sim, &w.cluster, 6, &w.registry, w.cost.get(),
                      w.profiles.get(), &rec, nullptr, 0.1, seed);
        worker.setBatchingPolicy(std::make_unique<ProteusBatching>());
        FamilyId resnet = w.registry.findFamily("resnet");
        VariantId v = w.registry.leastAccurate(resnet);
        worker.hostVariant(v, true);
        std::deque<Query> arena;
        for (int i = 0; i < 5; ++i) {
            sim.scheduleAt(millis(10 * i), [&, i] {
                arena.push_back(Query{});
                arena.back().family = resnet;
                arena.back().arrival = sim.now();
                arena.back().deadline = sim.now() + w.profiles->slo(resnet);
                worker.enqueue(&arena.back());
            });
        }
        sim.run();
        Time last = 0;
        for (const auto& q : rec.finished)
            last = std::max(last, q.completion);
        return last;
    };
    EXPECT_EQ(run_once(1), run_once(1));
    EXPECT_NE(run_once(1), run_once(2));
}

TEST(WorkerFaultTest, CrashDropsInFlightAndQueuedWork)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.mostAccurate(resnet);
    fix.worker.hostVariant(v, true);
    for (int i = 0; i < 6; ++i) {
        fix.sim.scheduleAt(millis(i), [&fix, resnet, i] {
            fix.worker.enqueue(fix.makeQuery(resnet, millis(i)));
        });
    }
    // Crash while the first batch is in flight. No requeue callback is
    // installed, so everything bounces to Dropped.
    fix.sim.scheduleAt(millis(10), [&fix] { fix.worker.crash(); });
    fix.sim.run();

    EXPECT_TRUE(fix.worker.failed());
    EXPECT_FALSE(fix.worker.ready());
    EXPECT_EQ(fix.worker.crashes(), 1u);
    EXPECT_EQ(fix.rec.finished.size(), 6u);
    for (const Query& q : fix.rec.finished)
        EXPECT_EQ(q.status, QueryStatus::Dropped);
    EXPECT_EQ(fix.worker.queueLength(), 0u);
}

TEST(WorkerFaultTest, FailedWorkerRefusesWorkUntilRecovered)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.mostAccurate(resnet);
    fix.worker.hostVariant(v, true);
    fix.sim.scheduleAt(0, [&fix] { fix.worker.crash(); });
    fix.sim.scheduleAt(millis(1), [&fix, resnet] {
        fix.worker.enqueue(fix.makeQuery(resnet, millis(1)));
    });
    // hostVariant while down is refused too.
    fix.sim.scheduleAt(millis(2), [&fix, v] {
        fix.worker.hostVariant(v, true);
        EXPECT_FALSE(fix.worker.ready());
    });
    fix.sim.scheduleAt(millis(3), [&fix, v, resnet] {
        fix.worker.recover();
        fix.worker.hostVariant(v, true);
        EXPECT_TRUE(fix.worker.ready());
        fix.worker.enqueue(fix.makeQuery(resnet, fix.sim.now()));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 2u);
    EXPECT_EQ(fix.rec.finished[0].status, QueryStatus::Dropped);
    EXPECT_EQ(fix.rec.finished[1].status, QueryStatus::Served);
}

TEST(WorkerFaultTest, StallSlowsExecutionForWindowOnly)
{
    auto serve_latency = [](bool stalled) {
        World w = miniWorld();
        Simulator sim;
        Recorder rec;
        Worker worker(&sim, &w.cluster, 6, &w.registry, w.cost.get(),
                      w.profiles.get(), &rec, nullptr);
        worker.setBatchingPolicy(std::make_unique<ProteusBatching>());
        FamilyId resnet = w.registry.findFamily("resnet");
        worker.hostVariant(w.registry.mostAccurate(resnet), true);
        if (stalled)
            worker.setStall(4.0, seconds(10.0));
        // A tight deadline forces prompt execution (the proactive
        // batcher would otherwise defer past the stall window).
        std::deque<Query> arena;
        sim.scheduleAt(0, [&] {
            arena.push_back(Query{});
            arena.back().family = resnet;
            arena.back().arrival = 0;
            arena.back().deadline = w.profiles->slo(resnet);
            worker.enqueue(&arena.back());
        });
        sim.run();
        return rec.finished.at(0).completion;
    };
    Time normal = serve_latency(false);
    Time stalled = serve_latency(true);
    EXPECT_GT(stalled, normal);
    // The multiplier applies to execution only (queueing/batch delay
    // unchanged), so the stalled run is at most 4x end to end.
    EXPECT_LE(stalled, 4 * normal);
}

TEST(WorkerFaultTest, StallExpires)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    fix.worker.hostVariant(fix.world.registry.mostAccurate(resnet), true);
    fix.worker.setStall(8.0, millis(1));
    // Enqueue well after the stall window closed.
    fix.sim.scheduleAt(seconds(1.0), [&fix, resnet] {
        fix.worker.enqueue(fix.makeQuery(resnet, fix.sim.now()));
    });
    fix.sim.run();
    ASSERT_EQ(fix.rec.finished.size(), 1u);
    EXPECT_EQ(fix.rec.finished[0].status, QueryStatus::Served);
}

TEST(WorkerFaultTest, FailNextLoadBouncesAndRaisesAlarm)
{
    WorkerFixture fix;
    FamilyId resnet = fix.world.registry.findFamily("resnet");
    VariantId v = fix.world.registry.mostAccurate(resnet);
    int alarms = 0;
    fix.worker.setLoadFailureAlarm([&alarms](DeviceId) { ++alarms; });
    fix.worker.failNextLoad();
    fix.sim.scheduleAt(0, [&fix, v] {
        fix.worker.hostVariant(v, /*instant=*/false);
    });
    fix.sim.run();
    EXPECT_EQ(alarms, 1);
    EXPECT_EQ(fix.worker.failedLoads(), 1u);
    EXPECT_FALSE(fix.worker.ready());

    // The next load attempt succeeds (the failure was one-shot).
    fix.sim.scheduleAt(fix.sim.now() + millis(1), [&fix, v] {
        fix.worker.hostVariant(v, /*instant=*/false);
    });
    fix.sim.run();
    EXPECT_TRUE(fix.worker.ready());
}

}  // namespace
}  // namespace proteus
