#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace proteus {
namespace {

TEST(SimulatorTest, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAt(seconds(3.0), [&] { order.push_back(3); });
    sim.scheduleAt(seconds(1.0), [&] { order.push_back(1); });
    sim.scheduleAt(seconds(2.0), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), seconds(3.0));
}

TEST(SimulatorTest, EqualTimesFireFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.scheduleAt(seconds(1.0), [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime)
{
    Simulator sim;
    Time fired_at = kNoTime;
    sim.scheduleAt(seconds(5.0), [&] {
        sim.scheduleAfter(seconds(2.0), [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(fired_at, seconds(7.0));
}

TEST(SimulatorTest, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    EventId id = sim.scheduleAt(seconds(1.0), [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));  // already gone
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownIdIsNoop)
{
    Simulator sim;
    EXPECT_FALSE(sim.cancel(9999));
}

TEST(SimulatorTest, RunUntilStopsClock)
{
    Simulator sim;
    int count = 0;
    sim.scheduleAt(seconds(1.0), [&] { ++count; });
    sim.scheduleAt(seconds(10.0), [&] { ++count; });
    sim.run(seconds(5.0));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), seconds(5.0));
    // Remaining event still fires if we keep running.
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PeriodicTaskRepeatsUntilCancelled)
{
    Simulator sim;
    int ticks = 0;
    EventId id = sim.schedulePeriodic(seconds(1.0), [&] {
        ++ticks;
        if (ticks == 4)
            sim.cancelPeriodic(id);
    });
    sim.run(seconds(100.0));
    EXPECT_EQ(ticks, 4);
}

TEST(SimulatorTest, PeriodicFirstFiringAfterOnePeriod)
{
    Simulator sim;
    Time first = kNoTime;
    EventId id = sim.schedulePeriodic(seconds(30.0), [&] {
        if (first == kNoTime)
            first = sim.now();
        sim.cancelPeriodic(id);
    });
    sim.run(seconds(120.0));
    EXPECT_EQ(first, seconds(30.0));
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            sim.scheduleAfter(seconds(1.0), recurse);
    };
    sim.scheduleAfter(seconds(1.0), recurse);
    sim.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(sim.now(), seconds(5.0));
}

TEST(SimulatorTest, EventsExecutedCounter)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.scheduleAt(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 7u);
}

TEST(SimulatorTest, StepExecutesExactlyOne)
{
    Simulator sim;
    int count = 0;
    sim.scheduleAt(1, [&] { ++count; });
    sim.scheduleAt(2, [&] { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace proteus
