/**
 * @file
 * Determinism property tests: the same seed must reproduce a run
 * byte-for-byte — fault schedule, event order, per-interval snapshots
 * and the run summary — and different seeds must actually differ.
 * The whole evaluation methodology (and the fault figures especially)
 * rests on this property.
 */

#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdio>
#include <string>

#include "core/serving_system.h"
#include "faults/fault_injector.h"
#include "models/model.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

void
appendF(std::string* out, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out->append(buf);
}

/** Canonical byte serialization of everything a run produced. */
std::string
fingerprint(const RunResult& r)
{
    std::string s;
    appendF(&s, "arr=%llu served=%llu late=%llu drop=%llu shed=%llu\n",
            (unsigned long long)r.summary.arrivals,
            (unsigned long long)r.summary.served,
            (unsigned long long)r.summary.served_late,
            (unsigned long long)r.summary.dropped,
            (unsigned long long)r.shed);
    appendF(&s, "tput=%.17g acc=%.17g drop=%.17g viol=%.17g\n",
            r.summary.avg_throughput_qps, r.summary.effective_accuracy,
            r.summary.max_accuracy_drop, r.summary.slo_violation_ratio);
    appendF(&s, "faults=%llu down_s=%.17g rec_s=%.17g fviol=%llu inj=%d\n",
            (unsigned long long)r.summary.fault_count,
            r.summary.total_downtime_s, r.summary.mean_recovery_s,
            (unsigned long long)r.summary.fault_violations,
            r.faults_injected);
    appendF(&s, "reallocs=%d batch=%.17g\n", r.reallocations,
            r.mean_batch_size);
    for (const auto& snap : r.timeline) {
        appendF(&s, "t=%lld a=%llu s=%llu l=%llu d=%llu acc=%.17g dd=%d\n",
                (long long)snap.start,
                (unsigned long long)snap.total.arrivals,
                (unsigned long long)snap.total.served,
                (unsigned long long)snap.total.served_late,
                (unsigned long long)snap.total.dropped,
                snap.total.accuracy_sum, snap.devices_down);
    }
    for (const auto& w : r.fault_windows) {
        appendF(&s, "w d=%u s=%lld e=%lld cap=%.17g v=%llu\n",
                (unsigned)w.device, (long long)w.start, (long long)w.end,
                w.capacity_lost_qps,
                (unsigned long long)w.violations_during);
    }
    return s;
}

std::string
fingerprint(const std::vector<FaultEvent>& schedule)
{
    std::string s;
    for (const auto& e : schedule) {
        appendF(&s, "%lld k=%d d=%u dt=%lld f=%.17g w=%lld\n",
                (long long)e.at, (int)e.kind, (unsigned)e.device,
                (long long)e.downtime, e.stall_factor,
                (long long)e.stall_window);
    }
    return s;
}

/** One full seeded run: trace, system and chaos plan all from @p seed. */
std::string
seededRun(std::uint64_t seed)
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 4);
    cluster.addDevices(types.gtx1080ti, 2);
    cluster.addDevices(types.v100, 2);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);

    SystemConfig cfg;
    cfg.seed = seed;
    cfg.latency_jitter_frac = 0.05;
    cfg.faults.seed = seed;
    cfg.faults.random.crash_rate_per_hour = 90.0;
    cfg.faults.random.mean_downtime = seconds(10.0);
    cfg.faults.random.stall_rate_per_hour = 60.0;

    Trace trace = steadyTrace(reg.numFamilies(), 50.0, seconds(40.0),
                              ArrivalProcess::Poisson, seed);
    ServingSystem system(&cluster, &reg, cfg);
    RunResult r = system.run(trace);

    std::string s = fingerprint(r);
    s += fingerprint(system.faultInjector()->schedule());
    return s;
}

TEST(DeterminismTest, FaultScheduleReproducible)
{
    RandomFaultConfig cfg;
    cfg.crash_rate_per_hour = 120.0;
    cfg.stall_rate_per_hour = 120.0;
    cfg.load_fail_rate_per_hour = 120.0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto a = generateFaultSchedule(cfg, 8, seconds(600.0), seed);
        auto b = generateFaultSchedule(cfg, 8, seconds(600.0), seed);
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << "seed " << seed;
        EXPECT_FALSE(a.empty()) << "seed " << seed;
    }
}

TEST(DeterminismTest, FaultScheduleSeedSensitive)
{
    RandomFaultConfig cfg;
    cfg.crash_rate_per_hour = 120.0;
    auto a = generateFaultSchedule(cfg, 8, seconds(600.0), 1);
    auto b = generateFaultSchedule(cfg, 8, seconds(600.0), 2);
    EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(DeterminismTest, FaultScheduleSorted)
{
    RandomFaultConfig cfg;
    cfg.crash_rate_per_hour = 120.0;
    cfg.stall_rate_per_hour = 120.0;
    auto sched = generateFaultSchedule(cfg, 8, seconds(600.0), 3);
    for (std::size_t i = 1; i < sched.size(); ++i)
        EXPECT_LE(sched[i - 1].at, sched[i].at);
    for (const auto& e : sched)
        EXPECT_LT(e.at, seconds(600.0));
}

TEST(DeterminismTest, SameSeedByteIdenticalAcross20Seeds)
{
    // Shared harness: 20 seeds, each run twice, pairs spread across
    // the sweep runner's worker pool (tests/testing/fixtures.h).
    testing::expectSeedSweepByteIdentical(seededRun);
}

TEST(DeterminismTest, DifferentSeedsDiffer)
{
    std::string prev = seededRun(100);
    int distinct = 0;
    for (std::uint64_t seed = 101; seed <= 105; ++seed) {
        std::string cur = seededRun(seed);
        if (cur != prev)
            ++distinct;
        prev = std::move(cur);
    }
    // Every consecutive pair should differ (traces alone guarantee it).
    EXPECT_EQ(distinct, 5);
}

}  // namespace
}  // namespace proteus
