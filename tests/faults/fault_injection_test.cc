/**
 * @file
 * Chaos regression tests for the fault-injection subsystem: scripted
 * device crashes / recoveries / stalls / load failures driven through
 * the full ServingSystem, asserting the failure-aware control path —
 * the controller re-plans onto survivors, accuracy degrades instead
 * of availability, and recovery restores capacity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/serving_system.h"
#include "faults/fault_injector.h"
#include "models/model.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

// Device layout of the mini cluster (see runMini below):
// 0..3 = cpu, 4..5 = gtx1080ti, 6..7 = v100.
constexpr DeviceId kV100A = 6;
constexpr DeviceId kV100B = 7;

struct MiniRun {
    Cluster cluster;
    ModelRegistry registry;
    std::unique_ptr<ServingSystem> system;
    RunResult result;
};

/** Run the mini world under @p cfg, keeping the system inspectable. */
MiniRun
runMini(SystemConfig cfg, double qps = 60.0,
        Duration duration = seconds(120.0))
{
    auto run = std::make_unique<MiniRun>();
    StandardTypes types = addStandardTypes(&run->cluster);
    run->cluster.addDevices(types.cpu, 4);
    run->cluster.addDevices(types.gtx1080ti, 2);
    run->cluster.addDevices(types.v100, 2);
    for (const auto& fam : miniModelZoo())
        run->registry.registerFamily(fam);
    Trace trace = steadyTrace(run->registry.numFamilies(), qps, duration,
                              ArrivalProcess::Poisson);
    run->system = std::make_unique<ServingSystem>(&run->cluster,
                                                  &run->registry, cfg);
    run->result = run->system->run(trace);
    MiniRun out = std::move(*run);
    return out;
}

/** A plan with one scripted crash (downtime 0 = stays down). */
FaultPlan
crashPlan(DeviceId device, Time at, Duration downtime = 0)
{
    FaultPlan plan;
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::DeviceCrash;
    e.device = device;
    e.downtime = downtime;
    plan.scripted.push_back(e);
    return plan;
}

TEST(FaultInjectionTest, ScriptedCrashExcludedFromNextPlan)
{
    SystemConfig cfg;
    cfg.faults = crashPlan(kV100A, seconds(40.0));
    MiniRun run = runMini(cfg);

    ASSERT_NE(run.system->faultInjector(), nullptr);
    EXPECT_EQ(run.result.faults_injected, 1);
    ASSERT_EQ(run.result.fault_windows.size(), 1u);
    EXPECT_EQ(run.result.fault_windows[0].device, kV100A);
    EXPECT_EQ(run.result.fault_windows[0].start, seconds(40.0));
    EXPECT_EQ(run.result.fault_windows[0].end, kNoTime);  // never back

    // Device stayed down and the plan in force excludes it: no hosted
    // variant, no routing share points at it.
    EXPECT_EQ(run.system->health().state(kV100A), DeviceHealth::Down);
    const Allocation& plan = run.system->currentPlan();
    EXPECT_FALSE(plan.hosting[kV100A].has_value());
    for (const auto& shares : plan.routing) {
        for (const auto& share : shares)
            EXPECT_NE(share.device, kV100A);
    }

    // Conservation still holds and the system kept serving.
    EXPECT_EQ(run.result.summary.arrivals,
              run.result.summary.served + run.result.summary.served_late +
                  run.result.summary.dropped);
    EXPECT_GT(run.result.summary.served, 0u);
}

TEST(FaultInjectionTest, CrashVisibleInMetricsTimeline)
{
    SystemConfig cfg;
    cfg.faults = crashPlan(kV100A, seconds(40.0), seconds(30.0));
    MiniRun run = runMini(cfg);

    // devices_down transitions 0 -> 1 -> 0 across the timeline.
    std::vector<int> down;
    for (const auto& snap : run.result.timeline)
        down.push_back(snap.devices_down);
    EXPECT_EQ(down.front(), 0);
    EXPECT_NE(std::find(down.begin(), down.end(), 1), down.end());
    EXPECT_EQ(down.back(), 0);

    // The fault window is closed and matches the scripted downtime.
    ASSERT_EQ(run.result.fault_windows.size(), 1u);
    const FaultWindow& w = run.result.fault_windows[0];
    EXPECT_EQ(w.start, seconds(40.0));
    EXPECT_EQ(w.end, seconds(70.0));
    EXPECT_GT(w.capacity_lost_qps, 0.0);

    EXPECT_EQ(run.result.summary.fault_count, 1u);
    EXPECT_NEAR(run.result.summary.total_downtime_s, 30.0, 1e-9);
    EXPECT_NEAR(run.result.summary.mean_recovery_s, 30.0, 1e-9);
}

TEST(FaultInjectionTest, AccuracyDegradesNotAvailability)
{
    // Kill both V100s (the accuracy-dense capacity). A failure-aware
    // controller re-plans the demand onto cpus + 1080Tis with cheaper
    // variants: throughput holds, effective accuracy gives.
    SystemConfig faulty;
    faulty.faults = crashPlan(kV100A, seconds(40.0));
    faulty.faults.scripted.push_back(
        crashPlan(kV100B, seconds(40.0)).scripted[0]);

    MiniRun clean = runMini(SystemConfig{});
    MiniRun run = runMini(faulty);

    EXPECT_EQ(run.result.faults_injected, 2);
    // Availability preserved: the violation ratio stays small even
    // with a quarter of the cluster (and most of its capacity) gone.
    EXPECT_LT(run.result.summary.slo_violation_ratio, 0.15);
    // The accuracy knob is what gave: no better than the clean run.
    EXPECT_LE(run.result.summary.effective_accuracy,
              clean.result.summary.effective_accuracy + 1e-9);
}

TEST(FaultInjectionTest, RecoveryRestoresCapacity)
{
    SystemConfig cfg;
    cfg.faults = crashPlan(kV100A, seconds(40.0), seconds(25.0));
    MiniRun run = runMini(cfg, 60.0, seconds(150.0));

    // The device came back, reloaded a model and is Up again.
    EXPECT_EQ(run.system->health().state(kV100A), DeviceHealth::Up);
    // And the controller put it back to work: the final plan hosts a
    // variant on it (a v100 is the most valuable device in the mini
    // cluster, so any sensible plan uses it).
    EXPECT_TRUE(run.system->currentPlan().hosting[kV100A].has_value());
    EXPECT_EQ(run.result.summary.fault_count, 1u);
}

TEST(FaultInjectionTest, WorkerStallConserves)
{
    SystemConfig cfg;
    FaultEvent e;
    e.at = seconds(30.0);
    e.kind = FaultKind::WorkerStall;
    e.device = kV100A;
    e.stall_factor = 5.0;
    e.stall_window = seconds(20.0);
    cfg.faults.scripted.push_back(e);
    MiniRun run = runMini(cfg);

    EXPECT_EQ(run.result.faults_injected, 1);
    // A stall is not an outage: no fault window, no devices_down.
    EXPECT_TRUE(run.result.fault_windows.empty());
    EXPECT_EQ(run.result.summary.arrivals,
              run.result.summary.served + run.result.summary.served_late +
                  run.result.summary.dropped);
}

TEST(FaultInjectionTest, ModelLoadFailureRaisesAlarmAndHeals)
{
    SystemConfig cfg;
    FaultEvent e;
    e.at = seconds(20.0);
    e.kind = FaultKind::ModelLoadFail;
    e.device = kV100A;
    cfg.faults.scripted.push_back(e);
    MiniRun run = runMini(cfg);

    EXPECT_EQ(run.result.faults_injected, 1);
    EXPECT_EQ(run.result.summary.arrivals,
              run.result.summary.served + run.result.summary.served_late +
                  run.result.summary.dropped);
    // The failure alarm re-plans; the run ends healthy.
    EXPECT_LT(run.result.summary.slo_violation_ratio, 0.25);
}

TEST(FaultInjectionTest, SeededChaosIsDeterministicAndConserves)
{
    SystemConfig cfg;
    cfg.faults.random.crash_rate_per_hour = 60.0;  // ~2 crashes/device
    cfg.faults.random.mean_downtime = seconds(15.0);
    cfg.faults.random.stall_rate_per_hour = 30.0;
    cfg.faults.random.load_fail_rate_per_hour = 30.0;
    cfg.faults.seed = 7;

    MiniRun a = runMini(cfg);
    MiniRun b = runMini(cfg);

    EXPECT_GT(a.result.faults_injected, 0);
    EXPECT_EQ(a.result.faults_injected, b.result.faults_injected);
    EXPECT_EQ(a.result.summary.arrivals, b.result.summary.arrivals);
    EXPECT_EQ(a.result.summary.served, b.result.summary.served);
    EXPECT_EQ(a.result.summary.dropped, b.result.summary.dropped);
    EXPECT_EQ(a.result.fault_windows.size(), b.result.fault_windows.size());
    EXPECT_EQ(a.result.summary.arrivals,
              a.result.summary.served + a.result.summary.served_late +
                  a.result.summary.dropped);
}

TEST(FaultInjectionTest, CrashOfIdleDeviceIsHarmless)
{
    // Low demand: the cpus are likely idle. Crashing one must not
    // disturb the run beyond the bookkeeping.
    SystemConfig cfg;
    cfg.faults = crashPlan(0, seconds(40.0));
    MiniRun run = runMini(cfg, 20.0);

    EXPECT_EQ(run.result.faults_injected, 1);
    EXPECT_EQ(run.result.summary.arrivals,
              run.result.summary.served + run.result.summary.served_late +
                  run.result.summary.dropped);
    EXPECT_LT(run.result.summary.slo_violation_ratio, 0.1);
}

TEST(FaultInjectionTest, DoubleCrashSameDeviceCountsOnce)
{
    SystemConfig cfg;
    cfg.faults = crashPlan(kV100A, seconds(30.0));
    cfg.faults.scripted.push_back(
        crashPlan(kV100A, seconds(35.0)).scripted[0]);
    MiniRun run = runMini(cfg);

    // The second crash is a no-op on an already-Down device.
    EXPECT_EQ(run.result.faults_injected, 1);
    ASSERT_EQ(run.result.fault_windows.size(), 1u);
}

}  // namespace
}  // namespace proteus
