#include "core/serving_system.h"

#include <gtest/gtest.h>

#include "models/model.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

/** Mini registry + edge cluster system under a steady load. */
RunResult
runMini(SystemConfig cfg, double qps = 60.0,
        Duration duration = seconds(60.0),
        ArrivalProcess process = ArrivalProcess::Poisson)
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 4);
    cluster.addDevices(types.gtx1080ti, 2);
    cluster.addDevices(types.v100, 2);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);
    Trace trace = steadyTrace(reg.numFamilies(), qps, duration, process);
    ServingSystem system(&cluster, &reg, cfg);
    return system.run(trace);
}

TEST(ServingSystemTest, ConservationOfQueries)
{
    RunResult r = runMini(SystemConfig{});
    EXPECT_EQ(r.summary.arrivals,
              r.summary.served + r.summary.served_late +
                  r.summary.dropped);
}

TEST(ServingSystemTest, ProteusServesSteadyLoadWell)
{
    RunResult r = runMini(SystemConfig{});
    EXPECT_GT(r.summary.arrivals, 1000u);
    EXPECT_LT(r.summary.slo_violation_ratio, 0.05);
    EXPECT_GT(r.summary.effective_accuracy, 90.0);
}

TEST(ServingSystemTest, MetricsWithinRanges)
{
    RunResult r = runMini(SystemConfig{});
    EXPECT_GE(r.summary.slo_violation_ratio, 0.0);
    EXPECT_LE(r.summary.slo_violation_ratio, 1.0);
    EXPECT_GE(r.summary.max_accuracy_drop, 0.0);
    EXPECT_LE(r.summary.max_accuracy_drop, 100.0);
    for (const auto& snap : r.timeline) {
        if (snap.total.completed() > 0) {
            EXPECT_GE(snap.total.effectiveAccuracy(), 80.0);
            EXPECT_LE(snap.total.effectiveAccuracy(), 100.0);
        }
    }
}

TEST(ServingSystemTest, DeterministicAcrossRuns)
{
    RunResult a = runMini(SystemConfig{});
    RunResult b = runMini(SystemConfig{});
    EXPECT_EQ(a.summary.arrivals, b.summary.arrivals);
    EXPECT_EQ(a.summary.served, b.summary.served);
    EXPECT_EQ(a.summary.dropped, b.summary.dropped);
    EXPECT_DOUBLE_EQ(a.summary.effective_accuracy,
                     b.summary.effective_accuracy);
}

class AllAllocatorsTest
    : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(AllAllocatorsTest, RunsAndConserves)
{
    SystemConfig cfg;
    cfg.allocator = GetParam();
    RunResult r = runMini(cfg);
    EXPECT_EQ(r.summary.arrivals,
              r.summary.served + r.summary.served_late +
                  r.summary.dropped)
        << toString(GetParam());
    EXPECT_GT(r.summary.arrivals, 0u);
    EXPECT_GE(r.reallocations, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllAllocatorsTest,
    ::testing::Values(AllocatorKind::ProteusIlp,
                      AllocatorKind::InfaasAccuracy,
                      AllocatorKind::ClipperHT, AllocatorKind::ClipperHA,
                      AllocatorKind::Sommelier, AllocatorKind::ProteusNoMS,
                      AllocatorKind::ProteusNoQA),
    [](const auto& test_info) {
        std::string name = toString(test_info.param);
        for (auto& c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

class AllBatchingTest : public ::testing::TestWithParam<BatchingKind> {};

TEST_P(AllBatchingTest, RunsAndConserves)
{
    SystemConfig cfg;
    cfg.batching = GetParam();
    RunResult r = runMini(cfg);
    EXPECT_EQ(r.summary.arrivals,
              r.summary.served + r.summary.served_late +
                  r.summary.dropped)
        << toString(GetParam());
    // Even the weakest batching policy (static batch of one) must
    // keep the majority of this moderate load inside the SLO.
    EXPECT_LT(r.summary.slo_violation_ratio, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllBatchingTest,
    ::testing::Values(BatchingKind::Proteus, BatchingKind::ClipperAimd,
                      BatchingKind::NexusEarlyDrop,
                      BatchingKind::StaticOne),
    [](const auto& test_info) {
        std::string name = toString(test_info.param);
        for (auto& c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(ServingSystemTest, ClipperHtNeverScalesAccuracyUp)
{
    SystemConfig cfg;
    cfg.allocator = AllocatorKind::ClipperHT;
    RunResult r = runMini(cfg, 30.0);
    // HT pins the least accurate variants: effective accuracy equals
    // the arrival-weighted least-accurate accuracy, well below 95.
    EXPECT_LT(r.summary.effective_accuracy, 95.0);
}

TEST(ServingSystemTest, ProteusNoMsKeepsFullAccuracy)
{
    SystemConfig cfg;
    cfg.allocator = AllocatorKind::ProteusNoMS;
    RunResult r = runMini(cfg, 30.0);
    // Without model selection only the most accurate variants serve:
    // effective accuracy pegged at 100 (paper §6.5).
    EXPECT_GT(r.summary.effective_accuracy, 99.9);
}

TEST(ServingSystemTest, EmptyTraceRunsCleanly)
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 1);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);
    ServingSystem system(&cluster, &reg, SystemConfig{});
    RunResult r = system.run(Trace{}, std::vector<double>(3, 1.0));
    EXPECT_EQ(r.summary.arrivals, 0u);
}

TEST(ServingSystemTest, SloMultiplierAffectsViolations)
{
    SystemConfig tight;
    tight.slo_multiplier = 1.0;
    SystemConfig loose;
    loose.slo_multiplier = 3.0;
    RunResult rt = runMini(tight, 80.0);
    RunResult rl = runMini(loose, 80.0);
    EXPECT_GE(rt.summary.slo_violation_ratio,
              rl.summary.slo_violation_ratio);
}

TEST(ServingSystemTest, JitterRunStillConserves)
{
    SystemConfig cfg;
    cfg.latency_jitter_frac = 0.1;
    RunResult r = runMini(cfg);
    EXPECT_EQ(r.summary.arrivals,
              r.summary.served + r.summary.served_late +
                  r.summary.dropped);
}

TEST(ServingSystemTest, MeanBatchAboveOneUnderLoad)
{
    RunResult r = runMini(SystemConfig{}, 100.0);
    EXPECT_GT(r.mean_batch_size, 1.0);
}

}  // namespace
}  // namespace proteus
