/**
 * @file
 * Property-style sweeps over the full serving system: across random
 * seeds, arrival processes and loads, the end-to-end invariants must
 * hold (conservation, metric ranges, served-implies-deadline-or-late,
 * batching safety).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>

#include "core/serving_system.h"
#include "models/model.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

struct Scenario {
    ArrivalProcess process;
    double qps;
    std::uint64_t seed;
};

class SystemSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SystemSweep, InvariantsHold)
{
    auto [proc_idx, seed] = GetParam();
    ArrivalProcess process = static_cast<ArrivalProcess>(proc_idx);

    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 3);
    cluster.addDevices(types.gtx1080ti, 1);
    cluster.addDevices(types.v100, 1);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);

    double qps = 20.0 + 30.0 * seed;
    Trace trace = steadyTrace(reg.numFamilies(), qps, seconds(30.0),
                              process, 100 + seed);
    SystemConfig cfg;
    cfg.seed = seed;
    ServingSystem system(&cluster, &reg, cfg);
    RunResult r = system.run(trace);

    // Conservation.
    ASSERT_EQ(r.summary.arrivals,
              r.summary.served + r.summary.served_late +
                  r.summary.dropped);
    ASSERT_EQ(r.summary.arrivals, trace.size());

    // Ranges.
    EXPECT_GE(r.summary.slo_violation_ratio, 0.0);
    EXPECT_LE(r.summary.slo_violation_ratio, 1.0);
    if (r.summary.served + r.summary.served_late > 0) {
        EXPECT_GE(r.summary.effective_accuracy, 80.0);
        EXPECT_LE(r.summary.effective_accuracy, 100.0);
    }

    // Family totals sum to the overall totals.
    std::uint64_t fam_arr = 0, fam_served = 0, fam_drop = 0;
    for (const auto& c : r.family_totals) {
        fam_arr += c.arrivals;
        fam_served += c.completed();
        fam_drop += c.dropped;
    }
    EXPECT_EQ(fam_arr, r.summary.arrivals);
    EXPECT_EQ(fam_served, r.summary.served + r.summary.served_late);
    EXPECT_EQ(fam_drop, r.summary.dropped);

    // Timeline sums match totals too.
    std::uint64_t tl_arr = 0;
    for (const auto& snap : r.timeline)
        tl_arr += snap.total.arrivals;
    EXPECT_EQ(tl_arr, r.summary.arrivals);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SystemSweep,
    ::testing::Combine(::testing::Range(0, 3),   // arrival processes
                       ::testing::Range(0, 4))); // seeds/loads

class BatchingSafetySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchingSafetySweep, ProteusBatchingOnlyLateWhenOverloaded)
{
    auto [proc_idx, load] = GetParam();
    ArrivalProcess process = static_cast<ArrivalProcess>(proc_idx);

    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.v100, 2);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);

    double qps = 30.0 + load * 40.0;
    Trace trace = steadyTrace(reg.numFamilies(), qps, seconds(30.0),
                              process, 55 + load);
    SystemConfig cfg;
    ServingSystem system(&cluster, &reg, cfg);
    RunResult r = system.run(trace);

    // The proactive policy keeps late service (as opposed to drops)
    // rare: a query that cannot be served in time is dropped instead.
    if (r.summary.arrivals > 0) {
        double late_ratio = static_cast<double>(r.summary.served_late) /
                            static_cast<double>(r.summary.arrivals);
        EXPECT_LT(late_ratio, 0.05)
            << toString(process) << " qps=" << qps;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchingSafetySweep,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

TEST(SystemSweepDeterminism, EndToEndRunsByteIdenticalAcross20Seeds)
{
    // End-to-end flavor of the shared SeedSweep harness: a bursty
    // full-system run (Gamma arrivals, default control cadence) must
    // be byte-identical across repeats, with repeats racing each other
    // on the sweep worker pool.
    testing::expectSeedSweepByteIdentical([](std::uint64_t seed) {
        Cluster cluster;
        StandardTypes types = addStandardTypes(&cluster);
        cluster.addDevices(types.cpu, 3);
        cluster.addDevices(types.gtx1080ti, 1);
        cluster.addDevices(types.v100, 1);
        ModelRegistry reg;
        for (const auto& fam : miniModelZoo())
            reg.registerFamily(fam);

        Trace trace = steadyTrace(reg.numFamilies(), 45.0,
                                  seconds(20.0), ArrivalProcess::Gamma,
                                  seed);
        SystemConfig cfg;
        cfg.seed = seed;
        ServingSystem system(&cluster, &reg, cfg);
        RunResult r = system.run(trace);

        std::string s;
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "arr=%llu served=%llu late=%llu drop=%llu shed=%llu "
            "tput=%.17g viol=%.17g acc=%.17g re=%d\n",
            (unsigned long long)r.summary.arrivals,
            (unsigned long long)r.summary.served,
            (unsigned long long)r.summary.served_late,
            (unsigned long long)r.summary.dropped,
            (unsigned long long)r.shed, r.summary.avg_throughput_qps,
            r.summary.slo_violation_ratio,
            r.summary.effective_accuracy, r.reallocations);
        s += buf;
        for (const auto& snap : r.timeline) {
            std::snprintf(buf, sizeof(buf),
                          "t=%lld a=%llu s=%llu acc=%.17g\n",
                          (long long)snap.start,
                          (unsigned long long)snap.total.arrivals,
                          (unsigned long long)snap.total.served,
                          snap.total.accuracy_sum);
            s += buf;
        }
        return s;
    });
}

}  // namespace
}  // namespace proteus
