#include "cluster/device.h"

#include <gtest/gtest.h>

namespace proteus {
namespace {

TEST(ClusterTest, EmptyCluster)
{
    Cluster c;
    EXPECT_EQ(c.numTypes(), 0u);
    EXPECT_EQ(c.numDevices(), 0u);
}

TEST(ClusterTest, AddTypesAndDevices)
{
    Cluster c;
    DeviceTypeId t0 = c.addDeviceType(
        DeviceTypeInfo{"a", 1.0, 1.0, 0.5, 1024.0});
    DeviceTypeId t1 = c.addDeviceType(
        DeviceTypeInfo{"b", 2.0, 2.0, 0.9, 2048.0});
    c.addDevices(t0, 3);
    c.addDevices(t1, 2);
    EXPECT_EQ(c.numTypes(), 2u);
    EXPECT_EQ(c.numDevices(), 5u);
    EXPECT_EQ(c.countOfType(t0), 3);
    EXPECT_EQ(c.countOfType(t1), 2);
    EXPECT_EQ(c.typeInfo(t1).name, "b");
}

TEST(ClusterTest, DeviceIdsAreDenseAndTyped)
{
    Cluster c;
    DeviceTypeId t0 = c.addDeviceType(
        DeviceTypeInfo{"a", 1.0, 1.0, 0.5, 1024.0});
    c.addDevices(t0, 4);
    for (DeviceId d = 0; d < 4; ++d) {
        EXPECT_EQ(c.device(d).id, d);
        EXPECT_EQ(c.device(d).type, t0);
    }
    auto of_type = c.devicesOfType(t0);
    EXPECT_EQ(of_type.size(), 4u);
}

TEST(ClusterTest, PaperClusterMatchesTestbed)
{
    StandardTypes types;
    Cluster c = paperCluster(&types);
    // §6.1.5: 20 CPU + 10 GTX 1080 Ti + 10 V100 workers.
    EXPECT_EQ(c.numDevices(), 40u);
    EXPECT_EQ(c.countOfType(types.cpu), 20);
    EXPECT_EQ(c.countOfType(types.gtx1080ti), 10);
    EXPECT_EQ(c.countOfType(types.v100), 10);
}

TEST(ClusterTest, EdgeClusterIsSmall)
{
    Cluster c = edgeCluster();
    EXPECT_EQ(c.numDevices(), 7u);
}

TEST(ClusterTest, StandardTypePerformanceOrdering)
{
    StandardTypes types;
    Cluster c = paperCluster(&types);
    EXPECT_LT(c.typeInfo(types.cpu).gflops_per_ms,
              c.typeInfo(types.gtx1080ti).gflops_per_ms);
    EXPECT_LT(c.typeInfo(types.gtx1080ti).gflops_per_ms,
              c.typeInfo(types.v100).gflops_per_ms);
    // GPUs amortize batches better (smaller marginal factor).
    EXPECT_LT(c.typeInfo(types.v100).batch_efficiency,
              c.typeInfo(types.cpu).batch_efficiency);
}

TEST(ClusterTest, AddZeroDevicesIsNoop)
{
    Cluster c;
    DeviceTypeId t = c.addDeviceType(
        DeviceTypeInfo{"a", 1.0, 1.0, 0.5, 1024.0});
    c.addDevices(t, 0);
    EXPECT_EQ(c.numDevices(), 0u);
}

TEST(DeviceHealthTrackerTest, StartsAllUp)
{
    DeviceHealthTracker h(3);
    EXPECT_EQ(h.size(), 3u);
    EXPECT_EQ(h.downCount(), 0u);
    for (DeviceId d = 0; d < 3; ++d) {
        EXPECT_TRUE(h.up(d));
        EXPECT_EQ(h.state(d), DeviceHealth::Up);
    }
}

TEST(DeviceHealthTrackerTest, FullLifecycle)
{
    DeviceHealthTracker h(2);
    EXPECT_TRUE(h.markDown(0));
    EXPECT_EQ(h.state(0), DeviceHealth::Down);
    EXPECT_EQ(h.downCount(), 1u);
    EXPECT_TRUE(h.markRecovering(0));
    EXPECT_EQ(h.state(0), DeviceHealth::Recovering);
    EXPECT_FALSE(h.up(0));
    EXPECT_EQ(h.downCount(), 0u);  // Recovering is not Down
    EXPECT_TRUE(h.markUp(0));
    EXPECT_TRUE(h.up(0));
    // Device 1 untouched throughout.
    EXPECT_TRUE(h.up(1));
}

TEST(DeviceHealthTrackerTest, IllegalTransitionsAreNoops)
{
    DeviceHealthTracker h(1);
    EXPECT_FALSE(h.markRecovering(0));  // not Down
    EXPECT_TRUE(h.markUp(0));           // Up -> Up is a benign no-op
    ASSERT_TRUE(h.markDown(0));
    EXPECT_FALSE(h.markDown(0));  // already Down
    EXPECT_FALSE(h.markUp(0));    // Down cannot jump straight to Up
    EXPECT_EQ(h.state(0), DeviceHealth::Down);
}

TEST(DeviceHealthTrackerTest, DownMaskMarksOnlyDown)
{
    DeviceHealthTracker h(4);
    h.markDown(1);
    h.markDown(3);
    h.markRecovering(3);  // plan-eligible again
    std::vector<char> mask = h.downMask();
    ASSERT_EQ(mask.size(), 4u);
    EXPECT_EQ(mask[0], 0);
    EXPECT_EQ(mask[1], 1);
    EXPECT_EQ(mask[2], 0);
    EXPECT_EQ(mask[3], 0);
}

TEST(DeviceHealthTrackerTest, ToStringNames)
{
    EXPECT_STREQ(toString(DeviceHealth::Up), "up");
    EXPECT_STREQ(toString(DeviceHealth::Down), "down");
    EXPECT_STREQ(toString(DeviceHealth::Recovering), "recovering");
}

}  // namespace
}  // namespace proteus
