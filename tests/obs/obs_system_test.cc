/**
 * @file
 * End-to-end observability: a traced ServingSystem run produces spans
 * of every expected kind, populates the registry, and exports a
 * byte-identical trace across same-seed repetitions. A run with
 * tracing disabled has no tracer at all.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/serving_system.h"
#include "models/model.h"
#include "obs/exporter.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

SystemConfig
tracedConfig(std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.seed = seed;
    cfg.obs.enabled = true;
    cfg.obs.ring_capacity = 1 << 18;  // no wraparound in these runs
    return cfg;
}

/** One traced mini-zoo run; the system outlives the call via @p out. */
std::string
tracedRun(std::uint64_t seed)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 50.0,
                              seconds(20.0), ArrivalProcess::Poisson,
                              seed);
    ServingSystem system(&w.cluster, &w.registry, tracedConfig(seed));
    system.run(trace);
    return obs::toChromeTraceJson(*system.tracer());
}

TEST(ObsSystemTest, DisabledRunHasNoTracer)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 30.0,
                              seconds(5.0), ArrivalProcess::Poisson, 1);
    ServingSystem system(&w.cluster, &w.registry, SystemConfig{});
    system.run(trace);
    EXPECT_EQ(system.tracer(), nullptr);
}

TEST(ObsSystemTest, TracedRunCoversAllStages)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 50.0,
                              seconds(20.0), ArrivalProcess::Poisson, 7);
    ServingSystem system(&w.cluster, &w.registry, tracedConfig(7));
    RunResult r = system.run(trace);
    ASSERT_NE(system.tracer(), nullptr);
    EXPECT_EQ(system.tracer()->dropped(), 0u);

    std::set<obs::SpanKind> kinds;
    std::uint64_t query_spans = 0;
    for (const obs::SpanRecord& s : system.tracer()->spans()) {
        kinds.insert(s.kind);
        EXPECT_LE(s.start, s.end);
        if (s.kind == obs::SpanKind::Query)
            ++query_spans;
    }
    // Every query reaches a terminal state exactly once.
    EXPECT_EQ(query_spans, r.summary.arrivals);
    for (obs::SpanKind k :
         {obs::SpanKind::Query, obs::SpanKind::Route,
          obs::SpanKind::Queue, obs::SpanKind::Exec,
          obs::SpanKind::Batch, obs::SpanKind::Load,
          obs::SpanKind::Solve, obs::SpanKind::Apply})
        EXPECT_TRUE(kinds.count(k)) << obs::toString(k);
}

TEST(ObsSystemTest, RegistryReflectsRunSummary)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 50.0,
                              seconds(20.0), ArrivalProcess::Poisson, 7);
    ServingSystem system(&w.cluster, &w.registry, tracedConfig(7));
    RunResult r = system.run(trace);

    const obs::MetricsRegistry& reg = system.metricsRegistry();
    const auto& counters = reg.counters();
    auto counterValue = [&](const char* name) -> std::uint64_t {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second->value();
    };
    EXPECT_EQ(counterValue("queries.arrivals"), r.summary.arrivals);
    EXPECT_EQ(counterValue("queries.served"), r.summary.served);
    EXPECT_GE(counterValue("controller.decisions"), 1u);

    auto hist = reg.histograms().find("solver.wall_us");
    ASSERT_NE(hist, reg.histograms().end());
    EXPECT_EQ(hist->second->count(),
              counterValue("controller.decisions"));
}

TEST(ObsSystemTest, SameSeedTraceByteIdentical)
{
    const std::string a = tracedRun(11);
    const std::string b = tracedRun(11);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 2u);
}

TEST(ObsSystemTest, DifferentSeedsProduceDifferentTraces)
{
    EXPECT_NE(tracedRun(11), tracedRun(12));
}

}  // namespace
}  // namespace proteus
