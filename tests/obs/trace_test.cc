/**
 * @file
 * Span tracer: ring-buffer wraparound, oldest-first readout and span
 * interval nesting.
 */

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace proteus {
namespace obs {
namespace {

SpanRecord
span(Time start, Time end, std::uint64_t id,
     SpanKind kind = SpanKind::Query)
{
    SpanRecord s;
    s.start = start;
    s.end = end;
    s.id = id;
    s.kind = kind;
    return s;
}

TEST(TracerTest, RecordsUpToCapacity)
{
    Tracer t(4);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 0u);
    t.record(span(0, 1, 1));
    t.record(span(1, 2, 2));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.recorded(), 2u);
    EXPECT_EQ(t.dropped(), 0u);

    auto spans = t.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].id, 1u);
    EXPECT_EQ(spans[1].id, 2u);
}

TEST(TracerTest, WraparoundOverwritesOldestKeepsOrder)
{
    Tracer t(4);
    for (std::uint64_t i = 1; i <= 6; ++i)
        t.record(span(static_cast<Time>(i),
                      static_cast<Time>(i + 1), i));
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.dropped(), 2u);

    auto spans = t.spans();
    ASSERT_EQ(spans.size(), 4u);
    // Spans 1 and 2 were overwritten; 3..6 remain oldest-first.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(spans[i].id, i + 3) << "index " << i;
}

TEST(TracerTest, CapacityIsFixedAfterConstruction)
{
    Tracer t(2);
    for (int i = 0; i < 100; ++i)
        t.record(span(i, i + 1, static_cast<std::uint64_t>(i)));
    EXPECT_EQ(t.capacity(), 2u);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.dropped(), 98u);
}

TEST(SpanRecordTest, DurationAndContainment)
{
    SpanRecord outer = span(10, 100, 1, SpanKind::Query);
    SpanRecord inner = span(20, 80, 1, SpanKind::Exec);
    SpanRecord overlapping = span(50, 120, 2, SpanKind::Queue);

    EXPECT_EQ(outer.duration(), 90);
    EXPECT_TRUE(outer.contains(inner));
    EXPECT_TRUE(outer.contains(outer));
    EXPECT_FALSE(outer.contains(overlapping));
    EXPECT_FALSE(inner.contains(outer));
}

TEST(SpanKindTest, NamesAreStable)
{
    EXPECT_STREQ(toString(SpanKind::Query), "query");
    EXPECT_STREQ(toString(SpanKind::Route), "route");
    EXPECT_STREQ(toString(SpanKind::Queue), "queue");
    EXPECT_STREQ(toString(SpanKind::Exec), "exec");
    EXPECT_STREQ(toString(SpanKind::Batch), "batch");
    EXPECT_STREQ(toString(SpanKind::Load), "load");
    EXPECT_STREQ(toString(SpanKind::Solve), "solve");
    EXPECT_STREQ(toString(SpanKind::Apply), "apply");
    EXPECT_STREQ(toString(SpanKind::Alarm), "alarm");
}

TEST(LinkKindTest, NamesAreStable)
{
    EXPECT_STREQ(toString(LinkKind::QueryInBatch), "query_in_batch");
    EXPECT_STREQ(toString(LinkKind::BatchOnDevice), "batch_on_device");
    EXPECT_STREQ(toString(LinkKind::BatchOnEpoch), "batch_on_epoch");
    EXPECT_STREQ(toString(LinkKind::StageHandoff), "stage_handoff");
    EXPECT_STREQ(toString(LinkKind::QueuedBehind), "queued_behind");
}

TEST(TracerTest, SpanIdsAreStableAcrossWraparound)
{
    Tracer t(4);
    for (std::uint64_t i = 1; i <= 6; ++i)
        t.record(span(static_cast<Time>(i),
                      static_cast<Time>(i + 1), 100 + i));
    // span_id is the 1-based record sequence number: the ring holds
    // the 3rd..6th records and their ids survive eviction untouched.
    auto spans = t.spans();
    ASSERT_EQ(spans.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(spans[i].span_id, i + 3) << "index " << i;
}

LinkRecord
link(Time at, std::uint64_t from, std::uint64_t to,
     LinkKind kind = LinkKind::QueryInBatch)
{
    LinkRecord l;
    l.at = at;
    l.from = from;
    l.to = to;
    l.kind = kind;
    return l;
}

TEST(TracerTest, LinkRingWrapsOldestFirstAndCountsDrops)
{
    Tracer t(8, 3);
    EXPECT_EQ(t.linkCapacity(), 3u);
    for (std::uint64_t i = 1; i <= 5; ++i)
        t.recordLink(link(static_cast<Time>(i), i, i + 10));
    EXPECT_EQ(t.linksRecorded(), 5u);
    EXPECT_EQ(t.linksDropped(), 2u);

    auto links = t.links();
    ASSERT_EQ(links.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(links[i].from, i + 3) << "index " << i;
}

TEST(TracerTest, LinkCapacityDefaultsToSpanCapacity)
{
    Tracer t(5);
    EXPECT_EQ(t.linkCapacity(), 5u);
    EXPECT_EQ(t.linksRecorded(), 0u);
    EXPECT_EQ(t.links().size(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace proteus
