/**
 * @file
 * Causal lineage: the TailReservoir's seeded sampling, the
 * LineageIndex's exact latency partition on hand-built traces, the
 * same guarantee on full ServingSystem runs (single-family and
 * pipeline), and 20-seed byte-identity of the lineage export across
 * 1-vs-4 sweep threads.
 */

#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/serving_system.h"
#include "models/model.h"
#include "obs/exporter.h"
#include "obs/lineage.h"
#include "obs/trace.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace obs {
namespace {

void
appendF(std::string* out, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out->append(buf);
}

// ---------------------------------------------------------------------------
// TailReservoir
// ---------------------------------------------------------------------------

TEST(TailReservoirTest, OnlyViolatorsAreSampled)
{
    TailReservoir r(4, 1);
    r.offer(1, false);
    r.offer(2, true);
    r.offer(3, false);
    r.offer(4, true);
    EXPECT_EQ(r.offered(), 2u);
    EXPECT_EQ(r.exemplars(), (std::vector<std::uint64_t>{2, 4}));
}

TEST(TailReservoirTest, FillsToCapacityThenSamples)
{
    TailReservoir r(8, 7);
    for (std::uint64_t q = 1; q <= 1000; ++q)
        r.offer(q, true);
    EXPECT_EQ(r.offered(), 1000u);
    const auto ex = r.exemplars();
    ASSERT_EQ(ex.size(), 8u);
    for (std::size_t i = 1; i < ex.size(); ++i)
        EXPECT_LT(ex[i - 1], ex[i]) << "exemplars must be sorted";
}

TEST(TailReservoirTest, SameSeedSameExemplars)
{
    const auto fill = [](std::uint64_t seed) {
        TailReservoir r(8, seed);
        for (std::uint64_t q = 1; q <= 1000; ++q)
            r.offer(q, true);
        return r.exemplars();
    };
    EXPECT_EQ(fill(11), fill(11));
    EXPECT_NE(fill(11), fill(12));
}

TEST(TailReservoirTest, ZeroCapacityIsInert)
{
    TailReservoir r(0, 1);
    r.offer(1, true);
    EXPECT_EQ(r.offered(), 0u);
    EXPECT_TRUE(r.exemplars().empty());
}

// ---------------------------------------------------------------------------
// SegmentKind
// ---------------------------------------------------------------------------

TEST(SegmentKindTest, NamesAreStable)
{
    EXPECT_STREQ(toString(SegmentKind::Route), "route");
    EXPECT_STREQ(toString(SegmentKind::StageHandoff), "stage_handoff");
    EXPECT_STREQ(toString(SegmentKind::QueueBehindBatch),
                 "queue_behind_batch");
    EXPECT_STREQ(toString(SegmentKind::EpochStall), "epoch_stall");
    EXPECT_STREQ(toString(SegmentKind::BatchFormation),
                 "batch_formation");
    EXPECT_STREQ(toString(SegmentKind::Execution), "execution");
    EXPECT_STREQ(toString(SegmentKind::Stall), "stall");
    EXPECT_EQ(kNumSegmentKinds, 7u);
}

// ---------------------------------------------------------------------------
// LineageIndex on hand-built traces
// ---------------------------------------------------------------------------

SpanRecord
makeSpan(SpanKind kind, Time start, Time end, std::uint64_t id)
{
    SpanRecord s;
    s.kind = kind;
    s.start = start;
    s.end = end;
    s.id = id;
    return s;
}

TEST(LineageIndexTest, QueueWaitSplitsByDeviceActivity)
{
    // Query 5 on device 0: routed [0,2], queued [2,60], executed
    // [60,100] in batch 9. While it queued, the device ran batch 7
    // over [10,30] and loaded a model over [30,50].
    std::vector<SpanRecord> spans;
    SpanRecord q = makeSpan(SpanKind::Query, 0, 100, 5);
    q.a = 1;   // family
    q.b = 2;   // served variant
    q.v0 = 1;  // status
    q.v1 = 0;  // device
    spans.push_back(q);
    spans.push_back(makeSpan(SpanKind::Route, 0, 2, 5));
    SpanRecord queue = makeSpan(SpanKind::Queue, 2, 60, 5);
    queue.v0 = 0;  // device
    spans.push_back(queue);
    SpanRecord exec = makeSpan(SpanKind::Exec, 60, 100, 5);
    exec.v0 = 0;
    exec.parent_kind = SpanKind::Batch;
    exec.parent_id = 9;
    spans.push_back(exec);
    SpanRecord other = makeSpan(SpanKind::Batch, 10, 30, 7);
    other.a = 0;  // device
    spans.push_back(other);
    SpanRecord own = makeSpan(SpanKind::Batch, 60, 100, 9);
    own.a = 0;
    spans.push_back(own);
    SpanRecord load = makeSpan(SpanKind::Load, 30, 50, 3);
    load.a = 0;
    spans.push_back(load);

    const LineageIndex index(spans, {});
    const CriticalPath cp = index.analyze(5);
    EXPECT_EQ(cp.query, 5u);
    EXPECT_EQ(cp.family, 1u);
    EXPECT_EQ(cp.variant, 2u);
    EXPECT_EQ(cp.status, 1);
    EXPECT_EQ(cp.pipeline, -1);
    EXPECT_EQ(cp.total(), 100);
    EXPECT_TRUE(cp.exact());

    // The exact expected decomposition, in timeline order.
    struct Expect {
        SegmentKind kind;
        Time start;
        Time end;
        std::uint64_t ref;
    };
    const std::vector<Expect> expected = {
        {SegmentKind::Route, 0, 2, 0},
        {SegmentKind::BatchFormation, 2, 10, 0},
        {SegmentKind::QueueBehindBatch, 10, 30, 7},
        {SegmentKind::EpochStall, 30, 50, 3},
        {SegmentKind::BatchFormation, 50, 60, 0},
        {SegmentKind::Execution, 60, 100, 9},
    };
    ASSERT_EQ(cp.segments.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(cp.segments[i].kind, expected[i].kind) << "seg " << i;
        EXPECT_EQ(cp.segments[i].start, expected[i].start) << "seg " << i;
        EXPECT_EQ(cp.segments[i].end, expected[i].end) << "seg " << i;
        EXPECT_EQ(cp.segments[i].ref, expected[i].ref) << "seg " << i;
    }
}

TEST(LineageIndexTest, UnexplainedIntervalsBecomeStall)
{
    // Hop spans leave gaps: [2,10) before the queue and [50,100) after
    // it (no exec — e.g. the query was dropped). Both must surface as
    // Stall so the partition stays exact.
    std::vector<SpanRecord> spans;
    SpanRecord q = makeSpan(SpanKind::Query, 0, 100, 1);
    q.a = 0;
    q.v0 = 3;  // dropped
    spans.push_back(q);
    spans.push_back(makeSpan(SpanKind::Route, 0, 2, 1));
    SpanRecord queue = makeSpan(SpanKind::Queue, 10, 50, 1);
    queue.v0 = 2;
    spans.push_back(queue);

    const LineageIndex index(spans, {});
    const CriticalPath cp = index.analyze(1);
    EXPECT_TRUE(cp.exact());
    ASSERT_EQ(cp.segments.size(), 4u);
    EXPECT_EQ(cp.segments[0].kind, SegmentKind::Route);
    EXPECT_EQ(cp.segments[1].kind, SegmentKind::Stall);
    EXPECT_EQ(cp.segments[1].start, 2);
    EXPECT_EQ(cp.segments[1].end, 10);
    // No device activity recorded: the whole wait is batching time.
    EXPECT_EQ(cp.segments[2].kind, SegmentKind::BatchFormation);
    EXPECT_EQ(cp.segments[3].kind, SegmentKind::Stall);
    EXPECT_EQ(cp.segments[3].start, 50);
    EXPECT_EQ(cp.segments[3].end, 100);
}

TEST(LineageIndexTest, NonEntryRouteIsStageHandoff)
{
    std::vector<SpanRecord> spans;
    SpanRecord q = makeSpan(SpanKind::Query, 0, 20, 4);
    q.a = 0;
    q.v2 = 3;  // pipeline id 2, 1-based
    spans.push_back(q);
    SpanRecord entry = makeSpan(SpanKind::Route, 0, 5, 4);
    entry.v0 = 1;  // stage 0: entry admission, plain Route
    spans.push_back(entry);
    SpanRecord hop = makeSpan(SpanKind::Route, 5, 20, 4);
    hop.v0 = 3;  // stage 2: a cross-stage handoff
    spans.push_back(hop);

    const LineageIndex index(spans, {});
    const CriticalPath cp = index.analyze(4);
    EXPECT_EQ(cp.pipeline, 2);
    EXPECT_TRUE(cp.exact());
    ASSERT_EQ(cp.segments.size(), 2u);
    EXPECT_EQ(cp.segments[0].kind, SegmentKind::Route);
    EXPECT_EQ(cp.segments[1].kind, SegmentKind::StageHandoff);
    EXPECT_EQ(cp.segments[1].ref, 2u);
}

TEST(LineageIndexTest, MissingQueryYieldsEmptyPath)
{
    const LineageIndex index({}, {});
    const CriticalPath cp = index.analyze(99);
    EXPECT_EQ(cp.family, kInvalidId);
    EXPECT_TRUE(cp.segments.empty());
    EXPECT_EQ(index.querySpan(99), nullptr);
}

TEST(LineageIndexTest, SlowestQueriesOrderedByDurationThenId)
{
    std::vector<SpanRecord> spans;
    spans.push_back(makeSpan(SpanKind::Query, 0, 50, 1));
    spans.push_back(makeSpan(SpanKind::Query, 0, 90, 2));
    spans.push_back(makeSpan(SpanKind::Query, 10, 100, 3));  // also 90
    const LineageIndex index(spans, {});
    EXPECT_EQ(index.slowestQueries(2),
              (std::vector<std::uint64_t>{2, 3}));
    EXPECT_EQ(index.slowestQueries(10),
              (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(LineageIndexTest, BlameTablesFoldSegmentsPerKey)
{
    CriticalPath a;
    a.family = 0;
    a.variant = 2;
    a.segments.push_back({0, 10, -1, 0, SegmentKind::Route});
    a.segments.push_back({10, 40, 0, 0, SegmentKind::Execution});
    CriticalPath b;
    b.family = 0;
    b.variant = kInvalidId;  // dropped
    b.segments.push_back({0, 5, -1, 0, SegmentKind::Stall});
    CriticalPath missing;  // analyze() miss: must not be counted

    const BlameTables tables = aggregateBlame({a, b, missing});
    ASSERT_EQ(tables.by_family.size(), 1u);
    const BlameRow& fam = tables.by_family.at(0);
    EXPECT_EQ(fam.queries, 2u);
    EXPECT_EQ(fam.by_kind[static_cast<std::size_t>(SegmentKind::Route)],
              10);
    EXPECT_EQ(
        fam.by_kind[static_cast<std::size_t>(SegmentKind::Execution)],
        30);
    EXPECT_EQ(fam.total(), 45);
    ASSERT_EQ(tables.by_variant.size(), 2u);
    EXPECT_EQ(tables.by_variant.at(kInvalidId).queries, 1u);
    EXPECT_EQ(tables.by_variant.at(2).total(), 40);
}

// ---------------------------------------------------------------------------
// Full-system exactness
// ---------------------------------------------------------------------------

SystemConfig
tracedConfig(std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.seed = seed;
    cfg.obs.enabled = true;
    cfg.obs.ring_capacity = 1 << 18;  // no wraparound in these runs
    return cfg;
}

/** Assert every traced query partitions exactly; return the index. */
LineageIndex
expectAllQueriesExact(const Tracer& tracer, std::uint64_t* analyzed)
{
    EXPECT_EQ(tracer.dropped(), 0u);
    LineageIndex index(tracer.spans(), tracer.links());
    *analyzed = 0;
    for (const SpanRecord& s : index.spans()) {
        if (s.kind != SpanKind::Query)
            continue;
        const CriticalPath cp = index.analyze(s.id);
        EXPECT_TRUE(cp.exact())
            << "query " << s.id << ": segments sum to "
            << cp.segmentSum() << " but e2e is " << cp.total();
        ++*analyzed;
    }
    return index;
}

TEST(LineageSystemTest, EveryTracedQueryPartitionsExactly)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 50.0,
                              seconds(20.0), ArrivalProcess::Poisson, 7);
    ServingSystem system(&w.cluster, &w.registry, tracedConfig(7));
    RunResult r = system.run(trace);
    ASSERT_NE(system.tracer(), nullptr);

    std::uint64_t analyzed = 0;
    const LineageIndex index =
        expectAllQueriesExact(*system.tracer(), &analyzed);
    EXPECT_EQ(analyzed, r.summary.arrivals);

    // Served queries produced query->batch joins.
    std::uint64_t joins = 0;
    for (const LinkRecord& l : index.links())
        if (l.kind == LinkKind::QueryInBatch)
            ++joins;
    EXPECT_GT(joins, 0u);
}

TEST(LineageSystemTest, PipelineQueriesPartitionExactly)
{
    // The fig12 vision chain (tests/pipeline/pipeline_system_test.cc):
    // stage handoffs must keep the partition exact, and at least one
    // analyzed path must carry a StageHandoff segment.
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 8);
    cluster.addDevices(types.gtx1080ti, 4);
    cluster.addDevices(types.v100, 4);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);

    PipelineSpec spec;
    spec.name = "vision";
    spec.slo = millis(60.0);
    spec.stages.push_back({"detect", "resnet", {}});
    spec.stages.push_back({"classify", "efficientnet", {"detect"}});
    spec.stages.push_back({"annotate", "mobilenet", {"classify"}});

    SystemConfig cfg = tracedConfig(7);
    cfg.pipelines = {spec};
    cfg.pipeline_joint_planning = true;

    PipelineTraceConfig wl;
    wl.qps = 80.0;
    wl.duration = seconds(20.0);
    wl.seed = 7;
    Trace trace = pipelineTrace({0}, wl);

    ServingSystem system(&cluster, &reg, cfg);
    RunResult r = system.run(trace);
    ASSERT_NE(system.tracer(), nullptr);
    EXPECT_GT(r.summary.served, 0u);

    std::uint64_t analyzed = 0;
    const LineageIndex index =
        expectAllQueriesExact(*system.tracer(), &analyzed);
    EXPECT_GT(analyzed, 0u);

    for (const SpanRecord& s : index.spans()) {
        if (s.kind != SpanKind::Query)
            continue;
        const CriticalPath cp = index.analyze(s.id);
        EXPECT_EQ(cp.pipeline, 0) << "query " << s.id;
    }

    // Handoffs are instantaneous on the simulated clock (the next
    // stage admits at the previous stage's completion event), so they
    // surface as zero-width non-entry Route hops — the partition must
    // stay exact across them — plus one StageHandoff link per forward.
    std::uint64_t handoff_hops = 0;
    for (const SpanRecord& s : index.spans())
        if (s.kind == SpanKind::Route && s.v0 >= 2)
            ++handoff_hops;
    EXPECT_EQ(handoff_hops, r.forwarded);

    std::uint64_t handoff_links = 0;
    for (const LinkRecord& l : index.links())
        if (l.kind == LinkKind::StageHandoff)
            ++handoff_links;
    EXPECT_EQ(handoff_links, r.forwarded);
}

TEST(LineageSystemTest, ReservoirFeedsExportedExemplars)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 50.0,
                              seconds(20.0), ArrivalProcess::Poisson, 7);
    ServingSystem system(&w.cluster, &w.registry, tracedConfig(7));
    system.run(trace);
    ASSERT_NE(system.tailReservoir(), nullptr);
    const TailReservoir& tail = *system.tailReservoir();
    EXPECT_EQ(tail.capacity(), SystemConfig{}.obs.tail_exemplars);
    EXPECT_LE(tail.exemplars().size(), tail.capacity());
    EXPECT_GE(tail.offered(), tail.exemplars().size());
    // The export carries exactly the reservoir's sample.
    EXPECT_EQ(system.traceNames().tail_exemplars, tail.exemplars());
}

// ---------------------------------------------------------------------------
// 20-seed byte identity across 1-vs-4 sweep threads
// ---------------------------------------------------------------------------

/**
 * Full lineage fingerprint of one traced run: the trace export
 * (spans + links + exemplars) plus the analyzed critical path of
 * every exemplar, so both the rings and the analyzer are covered.
 */
std::string
lineageFingerprint(std::uint64_t seed)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 40.0,
                              seconds(10.0), ArrivalProcess::Poisson,
                              seed);
    ServingSystem system(&w.cluster, &w.registry, tracedConfig(seed));
    system.run(trace);
    std::string fp =
        toChromeTraceJson(*system.tracer(), system.traceNames());
    const LineageIndex index(system.tracer()->spans(),
                             system.tracer()->links());
    for (const std::uint64_t qid :
         system.tailReservoir()->exemplars()) {
        const CriticalPath cp = index.analyze(qid);
        appendF(&fp, "\nq=%llu f=%u v=%u st=%lld",
                (unsigned long long)cp.query, cp.family, cp.variant,
                (long long)cp.status);
        for (const Segment& s : cp.segments) {
            appendF(&fp, " %s:%lld-%lld@%lld#%llu", toString(s.kind),
                    (long long)s.start, (long long)s.end,
                    (long long)s.device, (unsigned long long)s.ref);
        }
    }
    return fp;
}

TEST(LineageSweepTest, TwentySeedByteIdenticalAcrossThreadCounts)
{
    testing::SeedSweepOptions serial;
    serial.threads = 1;
    const auto one = testing::runSeedSweep(lineageFingerprint, serial);
    const auto four = testing::runSeedSweep(lineageFingerprint, {});
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_FALSE(one[i].empty()) << "seed " << i + 1;
        EXPECT_EQ(one[i], four[i])
            << "1-thread vs 4-thread sweep differ at seed " << i + 1;
    }
}

}  // namespace
}  // namespace obs
}  // namespace proteus
