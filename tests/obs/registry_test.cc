/**
 * @file
 * Metrics-registry semantics: counters, gauges, log-bucketed
 * histograms and their percentile readout.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics_registry.h"

namespace proteus {
namespace obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-2.0);
    EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(HistogramTest, EmptyReadsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(HistogramTest, TracksCountSumMinMaxMean)
{
    Histogram h;
    for (double v : {10.0, 20.0, 30.0})
        h.record(v);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 60.0);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 30.0);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero)
{
    Histogram h;
    h.record(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, PercentileWithinBucketError)
{
    // Log buckets with 25% growth: any estimate must sit within one
    // bucket (12.5% half-width) of the exact value, and inside the
    // observed range.
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    for (double p : {50.0, 95.0, 99.0}) {
        double exact = p / 100.0 * 1000.0;
        double est = h.percentile(p);
        EXPECT_NEAR(est, exact, exact * 0.13) << "p" << p;
        EXPECT_GE(est, h.min());
        EXPECT_LE(est, h.max());
    }
}

/** Width of the log bucket of @p h that contains @p value. */
double
bucketWidthAt(const Histogram& h, double value)
{
    int i = 0;
    while (h.bucketLowerEdge(i + 1) <= value)
        ++i;
    return h.bucketLowerEdge(i + 1) - h.bucketLowerEdge(i);
}

TEST(HistogramTest, KnownDistributionPercentilesWithinOneBucket)
{
    // Feed two fully known distributions through registry-created
    // histograms (the exact objects the system uses) and require
    // p50/p95/p99 within one bucket width of the ground truth
    // computed from the raw samples.
    MetricsRegistry reg;
    Histogram* uniform = reg.histogram("lat.uniform_us");
    Histogram* skewed = reg.histogram("lat.skewed_us");

    std::vector<double> uniform_samples, skewed_samples;
    const int n = 10'000;
    for (int i = 1; i <= n; ++i) {
        // Uniform on [1, 10000] us and a long-tailed quadratic ramp
        // (most mass low, tail up to 1e6 us).
        const double u = static_cast<double>(i);
        const double s =
            1e6 * (u / n) * (u / n);
        uniform_samples.push_back(u);
        skewed_samples.push_back(s);
        uniform->record(u);
        skewed->record(s);
    }

    struct Case {
        Histogram* h;
        std::vector<double>* samples;
        const char* name;
    };
    for (const Case& c :
         {Case{uniform, &uniform_samples, "uniform"},
          Case{skewed, &skewed_samples, "skewed"}}) {
        std::sort(c.samples->begin(), c.samples->end());
        for (double p : {50.0, 95.0, 99.0}) {
            const std::size_t rank = static_cast<std::size_t>(
                p / 100.0 * (c.samples->size() - 1));
            const double exact = (*c.samples)[rank];
            const double est = c.h->percentile(p);
            EXPECT_NEAR(est, exact, bucketWidthAt(*c.h, exact))
                << c.name << " p" << p;
        }
    }
}

TEST(HistogramTest, SingleSamplePercentilesCollapse)
{
    Histogram h;
    h.record(123.0);
    EXPECT_DOUBLE_EQ(h.p50(), 123.0);
    EXPECT_DOUBLE_EQ(h.p99(), 123.0);
}

TEST(HistogramTest, ValuesAboveRangeLandInLastBucket)
{
    Histogram h(Histogram::Options{1.0, 2.0, 4});
    h.record(1e12);  // far beyond 1 * 2^3
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 1e12);  // clamped to max
}

TEST(HistogramTest, BucketLowerEdges)
{
    Histogram h(Histogram::Options{10.0, 2.0, 4});
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(1), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(2), 20.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(3), 40.0);
}

TEST(MetricsRegistryTest, CreatesOnFirstUseAndReturnsStablePointers)
{
    MetricsRegistry reg;
    Counter* c = reg.counter("a");
    c->inc(7);
    EXPECT_EQ(reg.counter("a"), c);
    EXPECT_EQ(reg.counter("a")->value(), 7u);
    EXPECT_NE(reg.counter("b"), c);

    Gauge* g = reg.gauge("x");
    g->set(1.5);
    EXPECT_EQ(reg.gauge("x"), g);

    Histogram* h = reg.histogram("lat");
    h->record(5.0);
    EXPECT_EQ(reg.histogram("lat"), h);
    EXPECT_EQ(reg.histogram("lat")->count(), 1u);
}

TEST(MetricsRegistryTest, IterationIsNameOrdered)
{
    MetricsRegistry reg;
    reg.counter("zeta");
    reg.counter("alpha");
    reg.counter("mid");
    std::vector<std::string> names;
    for (const auto& [name, c] : reg.counters())
        names.push_back(name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace obs
}  // namespace proteus
