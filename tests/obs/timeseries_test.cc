/**
 * @file
 * TimeSeriesRecorder unit tests plus the determinism property the
 * observability layer promises: the timeline CSV/JSON exported by a
 * full ServingSystem run is byte-identical across same-seed
 * repetitions, checked over twenty seeds.
 */

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/serving_system.h"
#include "models/model.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

TEST(TimeSeriesTest, SamplesProbeOnCadence)
{
    Simulator sim;
    obs::TimeSeriesRecorder rec(&sim);
    rec.addProbe("clock_s", [&] { return toSeconds(sim.now()); });
    rec.start();
    sim.scheduleAt(seconds(4.5), [] {});
    sim.run(seconds(4.5));
    rec.finalize();

    // Periodic ticks at 1..4 s plus the trailing partial at 4.5 s.
    ASSERT_EQ(rec.numSamples(), 5u);
    EXPECT_EQ(rec.droppedSamples(), 0u);
    const auto& vals = rec.values("clock_s");
    ASSERT_EQ(vals.size(), 5u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(vals[4], 4.5);
    for (std::size_t i = 1; i < rec.times().size(); ++i)
        EXPECT_LT(rec.times()[i - 1], rec.times()[i]);
}

TEST(TimeSeriesTest, CounterRateDividesDeltaByInterval)
{
    Simulator sim;
    double total = 0.0;
    obs::TimeSeriesRecorder rec(&sim);
    rec.addCounterRate("events_per_s", [&] { return total; });
    rec.start();
    // +3 halfway through every sampling interval (off the tick times,
    // so sample/increment ordering at equal timestamps never matters).
    sim.schedulePeriodic(seconds(0.5), [&] {
        if (toSeconds(sim.now()) - static_cast<int>(
                toSeconds(sim.now())) > 0.25) {
            total += 3.0;
        }
    });
    sim.run(seconds(3.0));
    rec.finalize();

    ASSERT_GE(rec.numSamples(), 3u);
    const auto& vals = rec.values("events_per_s");
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(vals[i], 3.0) << "sample " << i;
}

TEST(TimeSeriesTest, CapacityBoundsStorageAndCountsDrops)
{
    Simulator sim;
    obs::TimeSeriesOptions opt;
    opt.capacity = 4;
    obs::TimeSeriesRecorder rec(&sim, opt);
    rec.addProbe("x", [] { return 1.0; });
    rec.start();
    sim.scheduleAt(seconds(10.0), [] {});
    sim.run(seconds(10.0));
    rec.finalize();

    EXPECT_EQ(rec.numSamples(), 4u);
    EXPECT_GT(rec.droppedSamples(), 0u);
}

TEST(TimeSeriesTest, ExportShapes)
{
    Simulator sim;
    obs::TimeSeriesRecorder rec(&sim);
    rec.addProbe("a", [] { return 0.5; });
    rec.addCounterRate("b", [] { return 0.0; });
    rec.start();
    sim.scheduleAt(seconds(2.0), [] {});
    sim.run(seconds(2.0));
    rec.finalize();

    const std::string csv = rec.toCsv();
    EXPECT_EQ(csv.rfind("t_s,a,b\n", 0), 0u) << csv;
    const std::string json = rec.toJson();
    EXPECT_NE(json.find("\"sample_interval_s\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"a\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"b\""), std::string::npos);
    ASSERT_EQ(rec.channelNames().size(), 2u);
    EXPECT_EQ(rec.channelNames()[0], "a");
    EXPECT_EQ(rec.channelNames()[1], "b");
    EXPECT_TRUE(rec.values("missing").empty());
}

/** One obs-enabled mini-zoo run; returns the timeline CSV + JSON. */
std::pair<std::string, std::string>
timelineRun(std::uint64_t seed)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 30.0,
                              seconds(10.0), ArrivalProcess::Poisson,
                              seed);
    SystemConfig cfg;
    cfg.seed = seed;
    cfg.obs.enabled = true;
    ServingSystem system(&w.cluster, &w.registry, cfg);
    system.run(trace);
    const obs::TimeSeriesRecorder* rec = system.timeseries();
    EXPECT_NE(rec, nullptr);
    return {rec->toCsv(), rec->toJson()};
}

TEST(TimeSeriesTest, DisabledRunHasNoRecorder)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 30.0,
                              seconds(5.0), ArrivalProcess::Poisson, 1);
    ServingSystem system(&w.cluster, &w.registry, SystemConfig{});
    system.run(trace);
    EXPECT_EQ(system.timeseries(), nullptr);
}

TEST(TimeSeriesTest, SystemRunRecordsExpectedChannels)
{
    testing::World w = testing::miniWorld();
    Trace trace = steadyTrace(w.registry.numFamilies(), 30.0,
                              seconds(10.0), ArrivalProcess::Poisson, 3);
    SystemConfig cfg;
    cfg.seed = 3;
    cfg.obs.enabled = true;
    ServingSystem system(&w.cluster, &w.registry, cfg);
    system.run(trace);
    const obs::TimeSeriesRecorder* rec = system.timeseries();
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->numSamples(), 0u);

    const std::string csv = rec->toCsv();
    for (const char* chan :
         {"device.0.util", "family.0.arrival_qps",
          "family.0.burn_rate", "cluster.devices_down",
          "solver.work_frac"})
        EXPECT_NE(csv.find(chan), std::string::npos) << chan;
}

TEST(TimeSeriesTest, SameSeedTimelineByteIdenticalTwentySeeds)
{
    // Shared harness: fingerprint = CSV + JSON concatenated; any
    // divergence in either surfaces as a byte mismatch.
    testing::expectSeedSweepByteIdentical([](std::uint64_t seed) {
        const auto run = timelineRun(seed);
        // Assertions live on the main thread (see helper); an empty
        // CSV would trip the helper's non-empty check.
        return run.first + "\n--\n" + run.second;
    });
}

TEST(TimeSeriesTest, DifferentSeedsProduceDifferentTimelines)
{
    EXPECT_NE(timelineRun(21).first, timelineRun(22).first);
}

}  // namespace
}  // namespace proteus
