/**
 * @file
 * SloMonitor unit tests: window ratio/burn math, bucket eviction as
 * simulated time advances, alarm hysteresis (raise at burn_high,
 * clear below burn_low), the min_count gate, and the SloAlarm spans
 * plus registry counters emitted on crossings.
 */

#include "obs/slo_monitor.h"

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace proteus {
namespace {

obs::SloMonitorOptions
testOptions()
{
    obs::SloMonitorOptions opt;
    opt.window = seconds(10.0);
    opt.buckets = 10;
    opt.budget = 0.1;
    opt.burn_high = 1.0;
    opt.burn_low = 0.5;
    opt.min_count = 5;
    return opt;
}

/** Advance @p sim to @p t without side effects. */
void
advanceTo(Simulator* sim, Time t)
{
    sim->scheduleAt(t, [] {});
    sim->run(t);
}

TEST(SloMonitorTest, RatioAndBurnMath)
{
    Simulator sim;
    obs::SloMonitor mon(&sim, testOptions());
    for (int i = 0; i < 10; ++i)
        mon.onOutcome(0, i < 2);  // 2 of 10 violated

    EXPECT_EQ(mon.windowCompleted(0), 10u);
    EXPECT_DOUBLE_EQ(mon.violationRatio(0), 0.2);
    EXPECT_DOUBLE_EQ(mon.burnRate(0), 2.0);  // 0.2 / budget 0.1
    // An unknown family reads as zero, not a crash.
    EXPECT_DOUBLE_EQ(mon.violationRatio(42), 0.0);
    EXPECT_EQ(mon.windowCompleted(42), 0u);
}

TEST(SloMonitorTest, WindowEvictsOldBuckets)
{
    Simulator sim;
    obs::SloMonitor mon(&sim, testOptions());
    for (int i = 0; i < 10; ++i)
        mon.onOutcome(0, true);
    EXPECT_DOUBLE_EQ(mon.violationRatio(0), 1.0);

    // Half a window later the old bucket is still inside.
    advanceTo(&sim, seconds(5.0));
    EXPECT_EQ(mon.windowCompleted(0), 10u);

    // A full window later everything has evicted.
    advanceTo(&sim, seconds(11.0));
    EXPECT_EQ(mon.windowCompleted(0), 0u);
    EXPECT_DOUBLE_EQ(mon.violationRatio(0), 0.0);
    EXPECT_DOUBLE_EQ(mon.burnRate(0), 0.0);
}

TEST(SloMonitorTest, PartialEvictionDropsOnlyStaleBuckets)
{
    Simulator sim;
    obs::SloMonitor mon(&sim, testOptions());
    mon.onOutcome(0, true);  // bucket at t=0
    advanceTo(&sim, seconds(6.0));
    for (int i = 0; i < 4; ++i)
        mon.onOutcome(0, false);  // bucket at t=6

    EXPECT_EQ(mon.windowCompleted(0), 5u);
    EXPECT_DOUBLE_EQ(mon.violationRatio(0), 0.2);

    // t=10.5: the t=0 bucket leaves, the t=6 bucket stays.
    advanceTo(&sim, seconds(10.5));
    EXPECT_EQ(mon.windowCompleted(0), 4u);
    EXPECT_DOUBLE_EQ(mon.violationRatio(0), 0.0);
}

TEST(SloMonitorTest, AlarmHysteresis)
{
    Simulator sim;
    obs::SloMonitor mon(&sim, testOptions());

    // 3 violations in 10 completions: burn 3.0 >= burn_high -> raise.
    for (int i = 0; i < 10; ++i)
        mon.onOutcome(0, i < 3);
    EXPECT_TRUE(mon.alarmActive(0));
    EXPECT_EQ(mon.alarmsRaised(), 1u);
    EXPECT_EQ(mon.alarmsCleared(), 0u);

    // Dilute to burn ~0.75 (3/40/0.1): between low and high, the
    // raised alarm must hold (no flapping).
    for (int i = 0; i < 30; ++i)
        mon.onOutcome(0, false);
    EXPECT_NEAR(mon.burnRate(0), 0.75, 1e-9);
    EXPECT_TRUE(mon.alarmActive(0));
    EXPECT_EQ(mon.alarmsRaised(), 1u);

    // Dilute below burn_low -> clear.
    for (int i = 0; i < 30; ++i)
        mon.onOutcome(0, false);
    EXPECT_LT(mon.burnRate(0), 0.5);
    EXPECT_FALSE(mon.alarmActive(0));
    EXPECT_EQ(mon.alarmsCleared(), 1u);

    // A fresh burst raises a second alarm.
    advanceTo(&sim, seconds(20.0));
    for (int i = 0; i < 10; ++i)
        mon.onOutcome(0, true);
    EXPECT_TRUE(mon.alarmActive(0));
    EXPECT_EQ(mon.alarmsRaised(), 2u);
}

TEST(SloMonitorTest, MinCountGatesAlarms)
{
    Simulator sim;
    obs::SloMonitor mon(&sim, testOptions());
    // 100% violations but below min_count: no alarm yet.
    for (int i = 0; i < 4; ++i)
        mon.onOutcome(0, true);
    EXPECT_FALSE(mon.alarmActive(0));
    EXPECT_EQ(mon.alarmsRaised(), 0u);

    mon.onOutcome(0, true);  // fifth completion crosses the gate
    EXPECT_TRUE(mon.alarmActive(0));
    EXPECT_EQ(mon.alarmsRaised(), 1u);
}

TEST(SloMonitorTest, FamiliesAreIndependent)
{
    Simulator sim;
    obs::SloMonitor mon(&sim, testOptions());
    for (int i = 0; i < 10; ++i) {
        mon.onOutcome(0, true);
        mon.onOutcome(1, false);
    }
    EXPECT_TRUE(mon.alarmActive(0));
    EXPECT_FALSE(mon.alarmActive(1));
    EXPECT_DOUBLE_EQ(mon.violationRatio(1), 0.0);
}

TEST(SloMonitorTest, CrossingsEmitSpansAndCounters)
{
    Simulator sim;
    obs::Tracer tracer(64);
    obs::MetricsRegistry registry;
    obs::SloMonitor mon(&sim, testOptions());
    mon.setTracer(&tracer);
    mon.setRegistry(&registry);

    for (int i = 0; i < 10; ++i)
        mon.onOutcome(3, true);  // raise
    for (int i = 0; i < 200; ++i)
        mon.onOutcome(3, false);  // clear

    int raised_spans = 0;
    int cleared_spans = 0;
    for (const obs::SpanRecord& s : tracer.spans()) {
        if (s.kind != obs::SpanKind::SloAlarm)
            continue;
        EXPECT_EQ(s.a, 3u);
        if (s.v0 == 1)
            ++raised_spans;
        else
            ++cleared_spans;
    }
    EXPECT_EQ(raised_spans, 1);
    EXPECT_EQ(cleared_spans, 1);

    const auto& counters = registry.counters();
    auto raised = counters.find("slo.alarms_raised");
    auto cleared = counters.find("slo.alarms_cleared");
    ASSERT_NE(raised, counters.end());
    ASSERT_NE(cleared, counters.end());
    EXPECT_EQ(raised->second->value(), 1u);
    EXPECT_EQ(cleared->second->value(), 1u);
}

}  // namespace
}  // namespace proteus
