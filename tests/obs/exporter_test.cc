/**
 * @file
 * Exporters: the Chrome trace-event JSON and the metrics dump must be
 * well-formed (parseable by the in-tree JSON parser) and carry the
 * kind-specific fields.
 */

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/exporter.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace proteus {
namespace obs {
namespace {

TEST(ChromeTraceExport, EmptyTracerProducesValidDocument)
{
    Tracer t(8);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(toChromeTraceJson(t), &doc, &error)) << error;
    EXPECT_EQ(doc.at("traceEvents").asArray().size(), 0u);
    EXPECT_DOUBLE_EQ(
        doc.at("otherData").numberOr("spans_recorded", -1.0), 0.0);
}

TEST(ChromeTraceExport, EventsCarryKindSpecificArgs)
{
    Tracer t(8);

    SpanRecord q;
    q.kind = SpanKind::Query;
    q.start = 1000;
    q.end = 5000;
    q.id = 7;
    q.a = 2;        // family
    q.b = 4;        // variant
    q.v0 = 1;       // status = Served
    q.v1 = 3;       // device
    t.record(q);

    SpanRecord solve;
    solve.kind = SpanKind::Solve;
    solve.start = 0;
    solve.end = 4'200'000;
    solve.id = 1;
    solve.v0 = 12;   // nodes
    solve.v1 = 345;  // simplex iterations
    solve.v2 = 5000; // gap ppm
    t.record(solve);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(toChromeTraceJson(t), &doc, &error)) << error;
    const auto& events = doc.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 2u);

    const JsonValue& jq = events[0];
    EXPECT_EQ(jq.stringOr("name", ""), "query");
    EXPECT_EQ(jq.stringOr("ph", ""), "X");
    EXPECT_DOUBLE_EQ(jq.numberOr("ts", -1.0), 1000.0);
    EXPECT_DOUBLE_EQ(jq.numberOr("dur", -1.0), 4000.0);
    const JsonValue& qargs = jq.at("args");
    EXPECT_DOUBLE_EQ(qargs.numberOr("qid", -1.0), 7.0);
    EXPECT_DOUBLE_EQ(qargs.numberOr("family", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(qargs.numberOr("variant", -2.0), 4.0);
    EXPECT_DOUBLE_EQ(qargs.numberOr("status", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(qargs.numberOr("device", -1.0), 3.0);

    const JsonValue& js = events[1];
    EXPECT_EQ(js.stringOr("name", ""), "solve");
    const JsonValue& sargs = js.at("args");
    EXPECT_DOUBLE_EQ(sargs.numberOr("nodes", -1.0), 12.0);
    EXPECT_DOUBLE_EQ(sargs.numberOr("simplex_iters", -1.0), 345.0);
    EXPECT_DOUBLE_EQ(sargs.numberOr("gap_ppm", -1.0), 5000.0);

    EXPECT_DOUBLE_EQ(
        doc.at("otherData").numberOr("spans_recorded", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(
        doc.at("otherData").numberOr("spans_dropped", -1.0), 0.0);
}

TEST(ChromeTraceExport, UnknownVariantSerializesAsMinusOne)
{
    Tracer t(2);
    SpanRecord q;
    q.kind = SpanKind::Query;
    q.start = 0;
    q.end = 10;
    q.id = 1;
    q.a = 0;
    q.b = kInvalidId;  // dropped before any variant served it
    q.v0 = 3;          // status = Dropped
    q.v1 = -1;
    t.record(q);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(toChromeTraceJson(t), &doc, &error)) << error;
    const JsonValue& args = doc.at("traceEvents").asArray()[0].at("args");
    EXPECT_DOUBLE_EQ(args.numberOr("variant", 0.0), -1.0);
    EXPECT_DOUBLE_EQ(args.numberOr("device", 0.0), -1.0);
}

TEST(ChromeTraceExport, SpanIdAndParentRideTheArgs)
{
    Tracer t(8);
    SpanRecord root;
    root.kind = SpanKind::Query;
    root.start = 0;
    root.end = 10;
    root.id = 7;
    t.record(root);

    SpanRecord child;
    child.kind = SpanKind::Route;
    child.start = 0;
    child.end = 2;
    child.id = 7;
    child.parent_id = 7;
    child.parent_kind = SpanKind::Query;
    t.record(child);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(toChromeTraceJson(t), &doc, &error)) << error;
    const auto& events = doc.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 2u);
    // Roots carry only the stable span id; children add the typed
    // causal parent (pk = parent SpanKind, pid = parent domain id).
    const JsonValue& rargs = events[0].at("args");
    EXPECT_DOUBLE_EQ(rargs.numberOr("sid", -1.0), 1.0);
    EXPECT_FALSE(rargs.has("pk"));
    EXPECT_FALSE(rargs.has("pid"));
    const JsonValue& cargs = events[1].at("args");
    EXPECT_DOUBLE_EQ(cargs.numberOr("sid", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(cargs.numberOr("pk", -1.0),
                     static_cast<double>(SpanKind::Query));
    EXPECT_DOUBLE_EQ(cargs.numberOr("pid", -1.0), 7.0);
}

TEST(ChromeTraceExport, LinksArrayCarriesTypedEdges)
{
    Tracer t(8, 4);
    LinkRecord l;
    l.kind = LinkKind::QueryInBatch;
    l.at = 123;
    l.from = 9;
    l.to = 4;
    l.aux = 2;
    t.recordLink(l);
    l.kind = LinkKind::QueuedBehind;
    l.from = 9;
    l.to = 8;
    t.recordLink(l);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(toChromeTraceJson(t), &doc, &error)) << error;
    const auto& links = doc.at("links").asArray();
    ASSERT_EQ(links.size(), 2u);
    EXPECT_EQ(links[0].stringOr("k", ""), "query_in_batch");
    EXPECT_DOUBLE_EQ(links[0].numberOr("ts", -1.0), 123.0);
    EXPECT_DOUBLE_EQ(links[0].numberOr("from", -1.0), 9.0);
    EXPECT_DOUBLE_EQ(links[0].numberOr("to", -1.0), 4.0);
    EXPECT_DOUBLE_EQ(links[0].numberOr("aux", -1.0), 2.0);
    EXPECT_EQ(links[1].stringOr("k", ""), "queued_behind");
    EXPECT_DOUBLE_EQ(
        doc.at("otherData").numberOr("links_recorded", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(
        doc.at("otherData").numberOr("links_dropped", -1.0), 0.0);
}

TEST(ChromeTraceExport, TailExemplarsLandInOtherData)
{
    Tracer t(4);
    TraceNameTables names;
    names.tail_exemplars = {11, 42, 97};
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(toChromeTraceJson(t, names), &doc, &error))
        << error;
    const auto& tail = doc.at("otherData").at("tail_exemplars").asArray();
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_DOUBLE_EQ(tail[1].asNumber(), 42.0);
}

TEST(ChromeTraceExport, EscapesNameTableStringsAndRoundTrips)
{
    Tracer t(4);
    TraceNameTables names;
    // Every escape class RFC 8259 requires: quote, backslash, the
    // named control escapes, and a bare control character.
    const std::string nasty = "a\"b\\c\nd\te\rf\bg\fh\x01i";
    names.families = {nasty, "plain"};
    names.variants = {"slash/ok"};

    const std::string json = toChromeTraceJson(t, names);
    // Golden escape forms in the raw document.
    EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\\u0001i"),
              std::string::npos);
    // Forward slash needs no escaping.
    EXPECT_NE(json.find("\"slash/ok\""), std::string::npos);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, &doc, &error)) << error;
    const auto& fams = doc.at("otherData").at("families").asArray();
    ASSERT_EQ(fams.size(), 2u);
    EXPECT_EQ(fams[0].asString(), nasty);
    EXPECT_EQ(fams[1].asString(), "plain");
    EXPECT_EQ(doc.at("otherData").at("variants").asArray()[0].asString(),
              "slash/ok");
}

TEST(MetricsExport, DumpsAllThreeMetricFamilies)
{
    MetricsRegistry reg;
    reg.counter("queries.served")->inc(42);
    reg.gauge("capacity.qps")->set(1234.5);
    Histogram* h = reg.histogram("solver.wall_us");
    h->record(100.0);
    h->record(200.0);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(toMetricsJson(reg), &doc, &error)) << error;
    EXPECT_DOUBLE_EQ(
        doc.at("counters").numberOr("queries.served", -1.0), 42.0);
    EXPECT_DOUBLE_EQ(
        doc.at("gauges").numberOr("capacity.qps", -1.0), 1234.5);
    const JsonValue& jh = doc.at("histograms").at("solver.wall_us");
    EXPECT_DOUBLE_EQ(jh.numberOr("count", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(jh.numberOr("sum", -1.0), 300.0);
    EXPECT_DOUBLE_EQ(jh.numberOr("min", -1.0), 100.0);
    EXPECT_DOUBLE_EQ(jh.numberOr("max", -1.0), 200.0);
    EXPECT_TRUE(jh.has("p50"));
    EXPECT_TRUE(jh.has("p95"));
    EXPECT_TRUE(jh.has("p99"));
}

}  // namespace
}  // namespace obs
}  // namespace proteus
