#include "common/json.h"

#include <gtest/gtest.h>

namespace proteus {
namespace {

TEST(JsonTest, ParsesScalars)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("42.5", &v));
    EXPECT_DOUBLE_EQ(v.asNumber(), 42.5);
    ASSERT_TRUE(parseJson("-7", &v));
    EXPECT_DOUBLE_EQ(v.asNumber(), -7.0);
    ASSERT_TRUE(parseJson("true", &v));
    EXPECT_TRUE(v.asBool());
    ASSERT_TRUE(parseJson("false", &v));
    EXPECT_FALSE(v.asBool());
    ASSERT_TRUE(parseJson("null", &v));
    EXPECT_TRUE(v.isNull());
    ASSERT_TRUE(parseJson("\"hello\"", &v));
    EXPECT_EQ(v.asString(), "hello");
}

TEST(JsonTest, ParsesNestedStructures)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": true}})", &v));
    ASSERT_TRUE(v.isObject());
    const auto& arr = v.at("a").asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_DOUBLE_EQ(arr[0].asNumber(), 1.0);
    EXPECT_EQ(arr[2].at("b").asString(), "c");
    EXPECT_TRUE(v.at("d").at("e").asBool());
}

TEST(JsonTest, EmptyContainers)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("{}", &v));
    EXPECT_TRUE(v.isObject());
    EXPECT_TRUE(v.keys().empty());
    ASSERT_TRUE(parseJson("[]", &v));
    EXPECT_TRUE(v.asArray().empty());
}

TEST(JsonTest, EscapeSequences)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"("a\nb\t\"c\"\\")", &v));
    EXPECT_EQ(v.asString(), "a\nb\t\"c\"\\");
}

TEST(JsonTest, UnicodeEscapes)
{
    JsonValue v;
    // Control characters (how the trace exporter writes them).
    ASSERT_TRUE(parseJson(R"("x\u0001y\u001Fz")", &v));
    EXPECT_EQ(v.asString(), std::string("x\x01y\x1Fz"));
    // BMP code points become UTF-8 (U+00E9 e-acute, U+20AC euro).
    ASSERT_TRUE(parseJson(R"("\u00E9\u20AC")", &v));
    EXPECT_EQ(v.asString(), "\xC3\xA9\xE2\x82\xAC");
    // Surrogate pair combines to U+1F600.
    ASSERT_TRUE(parseJson(R"("\uD83D\uDE00")", &v));
    EXPECT_EQ(v.asString(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsBadUnicodeEscapes)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(R"("\u12")", &v, &error));       // truncated
    EXPECT_FALSE(parseJson(R"("\u12GZ")", &v, &error));     // bad hex
    EXPECT_FALSE(parseJson(R"("\uD83D")", &v, &error));     // lone high
    EXPECT_FALSE(parseJson(R"("\uD83Dx")", &v, &error));    // no pair
    EXPECT_FALSE(parseJson(R"("\uD83D\u0041")", &v,
                           &error));                        // bad low
    EXPECT_FALSE(parseJson(R"("\uDE00")", &v, &error));     // lone low
}

TEST(JsonTest, WhitespaceTolerant)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("  {\n \"x\" :\t1 ,\n\"y\": [ 2 ] }\n", &v));
    EXPECT_DOUBLE_EQ(v.at("x").asNumber(), 1.0);
}

TEST(JsonTest, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("{", &v, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{\"a\" 1}", &v, &error));
    EXPECT_FALSE(parseJson("[1, 2,]", &v, &error));
    EXPECT_FALSE(parseJson("\"unterminated", &v, &error));
    EXPECT_FALSE(parseJson("tru", &v, &error));
    EXPECT_FALSE(parseJson("1 2", &v, &error));
}

TEST(JsonTest, AccessHelpers)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"({"a": 3, "s": "x", "b": true})", &v));
    EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 3.0);
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 7.5), 7.5);
    EXPECT_EQ(v.stringOr("s", "y"), "x");
    EXPECT_EQ(v.stringOr("missing", "y"), "y");
    EXPECT_TRUE(v.boolOr("b", false));
    EXPECT_TRUE(v.boolOr("missing", true));
    EXPECT_TRUE(v.has("a"));
    EXPECT_FALSE(v.has("z"));
}

TEST(JsonTest, KeysLists)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"({"b": 1, "a": 2})", &v));
    auto keys = v.keys();
    ASSERT_EQ(keys.size(), 2u);
}

}  // namespace
}  // namespace proteus
