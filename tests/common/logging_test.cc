/**
 * @file
 * Logging: verbosity gating and the simulated-time prefix added when a
 * simulator registers itself as the log time source.
 */

#include <gtest/gtest.h>

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "sim/simulator.h"

namespace proteus {
namespace {

/** Capture std::cerr and the log level for one test's lifetime. */
class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_level_ = logLevel();
        saved_buf_ = std::cerr.rdbuf(captured_.rdbuf());
    }

    void
    TearDown() override
    {
        std::cerr.rdbuf(saved_buf_);
        setLogLevel(saved_level_);
    }

    std::string output() const { return captured_.str(); }

    std::ostringstream captured_;
    std::streambuf* saved_buf_ = nullptr;
    LogLevel saved_level_ = LogLevel::Warn;
};

TEST_F(LoggingTest, InfoSuppressedAtWarnLevel)
{
    setLogLevel(LogLevel::Warn);
    inform("hidden");
    warn("visible");
    EXPECT_EQ(output().find("hidden"), std::string::npos);
    EXPECT_NE(output().find("[warn] visible"), std::string::npos);
}

TEST_F(LoggingTest, SimulatorTimePrefixesMessages)
{
    setLogLevel(LogLevel::Info);
    Simulator sim;
    inform("at start");
    sim.scheduleAt(seconds(1.5), [] { inform("mid run"); });
    sim.run();
    EXPECT_NE(output().find("[info] @0.000s at start"),
              std::string::npos);
    EXPECT_NE(output().find("[info] @1.500s mid run"),
              std::string::npos);
}

TEST_F(LoggingTest, DestroyedSimulatorStopsPrefixing)
{
    setLogLevel(LogLevel::Info);
    {
        Simulator sim;
    }
    inform("untimed");
    EXPECT_NE(output().find("[info] untimed"), std::string::npos);
    EXPECT_EQ(output().find('@'), std::string::npos);
}

TEST_F(LoggingTest, OldSimulatorDestructionKeepsNewerClock)
{
    setLogLevel(LogLevel::Info);
    auto older = std::make_unique<Simulator>();
    Simulator newer;
    older.reset();  // must not unhook `newer`
    inform("still timed");
    EXPECT_NE(output().find("[info] @0.000s still timed"),
              std::string::npos);
}

}  // namespace
}  // namespace proteus
