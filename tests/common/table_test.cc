#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace proteus {
namespace {

TEST(TextTableTest, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "qps"});
    t.addRow({"resnet", "100"});
    t.addRow({"x", "2"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("resnet"), std::string::npos);
    // Separator line present after the header.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, ShortRowsPadded)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_FALSE(oss.str().empty());
}

TEST(FormatTest, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(FormatTest, FmtPercent)
{
    EXPECT_EQ(fmtPercent(99.95, 1), "100.0%");
    EXPECT_EQ(fmtPercent(84.25, 2), "84.25%");
}

}  // namespace
}  // namespace proteus
