#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace proteus {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniform() == b.uniform();
    EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(RngTest, UniformIntInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanApproximatelyInverseRate)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, PoissonMeanMatches)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(6.5));
    EXPECT_NEAR(sum / n, 6.5, 0.1);
}

TEST(RngTest, GammaMeanMatchesShapeTimesScale)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.gamma(0.05, 20.0);  // mean 1.0, very bursty
    EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RngTest, PickWeightedHonorsWeights)
{
    Rng rng(19);
    std::vector<double> w{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 40000; ++i)
        counts[rng.pickWeighted(w)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(ZipfTest, PmfSumsToOne)
{
    ZipfDistribution z(9, 1.001);
    double total = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i)
        total += z.pmf(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, MassDecreasesWithRank)
{
    ZipfDistribution z(9, 1.001);
    for (std::size_t i = 1; i < z.size(); ++i)
        EXPECT_GT(z.pmf(i - 1), z.pmf(i));
}

TEST(ZipfTest, SampleFrequenciesTrackPmf)
{
    ZipfDistribution z(5, 1.2);
    Rng rng(23);
    std::vector<int> counts(5, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[z.sample(rng)]++;
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]) / n, z.pmf(i), 0.01);
}

TEST(ZipfTest, SingleRankAlwaysZero)
{
    ZipfDistribution z(1, 1.001);
    Rng rng(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

}  // namespace
}  // namespace proteus
