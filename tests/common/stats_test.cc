#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace proteus {
namespace {

TEST(OnlineStatsTest, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStatsTest, MeanAndVarianceMatchClosedForm)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, ResetClears)
{
    OnlineStats s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStatsTest, SingleSample)
{
    OnlineStats s;
    s.add(-3.5);
    EXPECT_DOUBLE_EQ(s.mean(), -3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(EwmaTest, FirstSampleInitializes)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.initialized());
    e.add(10.0);
    EXPECT_TRUE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, Smooths)
{
    Ewma e(0.5);
    e.add(10.0);
    e.add(20.0);
    EXPECT_DOUBLE_EQ(e.value(), 15.0);
    e.add(15.0);
    EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(EwmaTest, ConvergesToConstantInput)
{
    Ewma e(0.3);
    e.add(0.0);
    for (int i = 0; i < 200; ++i)
        e.add(42.0);
    EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(WindowedRateTest, CountsOnlyInsideWindow)
{
    WindowedRate r(seconds(1.0));
    r.record(seconds(0.0));
    r.record(seconds(0.5));
    r.record(seconds(0.9));
    EXPECT_EQ(r.countInWindow(seconds(1.0)), 3u);
    // At t=1.6 the event at t=0 and t=0.5 have aged out.
    EXPECT_EQ(r.countInWindow(seconds(1.6)), 1u);
    EXPECT_DOUBLE_EQ(r.rate(seconds(1.6)), 1.0);
}

TEST(WindowedRateTest, RateScalesWithWindow)
{
    WindowedRate r(seconds(2.0));
    for (int i = 0; i < 10; ++i)
        r.record(seconds(0.1 * i));
    // 10 events in 2 seconds -> 5 QPS.
    EXPECT_DOUBLE_EQ(r.rate(seconds(1.0)), 5.0);
}

TEST(PercentileTest, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(PercentileTest, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(PercentilesTest, EmptyInputYieldsZeros)
{
    EXPECT_EQ(percentiles({}, {50.0, 95.0, 99.0}),
              (std::vector<double>{0.0, 0.0, 0.0}));
    EXPECT_TRUE(percentiles({1.0, 2.0}, {}).empty());
}

TEST(PercentilesTest, SingleElementCollapses)
{
    EXPECT_EQ(percentiles({7.0}, {0.0, 50.0, 100.0}),
              (std::vector<double>{7.0, 7.0, 7.0}));
}

TEST(PercentilesTest, SortsOnceAndMatchesPerCallPercentile)
{
    std::vector<double> v{9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0};
    std::vector<double> ps{0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0};
    std::vector<double> batch = percentiles(v, ps);
    ASSERT_EQ(batch.size(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i])) << "p" << ps[i];
}

TEST(PercentilesTest, OutOfRangeRanksClamp)
{
    std::vector<double> v{1.0, 2.0, 3.0};
    EXPECT_EQ(percentiles(v, {-10.0, 200.0}),
              (std::vector<double>{1.0, 3.0}));
}

TEST(PercentileSortedTest, RequiresNoResort)
{
    std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentileSorted(sorted, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentileSorted(sorted, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentileSorted({}, 50.0), 0.0);
}

}  // namespace
}  // namespace proteus
