/**
 * @file
 * Deliberately-racy fixture proving the ThreadSanitizer gate fires.
 *
 * Two threads increment a plain int with no synchronization — a
 * textbook data race. The ctest entry (tsan_detects_injected_race) is
 * registered only when PROTEUS_SANITIZE matches "thread" and carries
 * WILL_FAIL: tsan reports the race and exits nonzero, and if it ever
 * stops doing so the gate itself is broken. The binary is NOT part of
 * plain builds, so the race never runs unsanitized.
 */

#include <thread>

namespace {

constexpr int kItersPerThread = 100000;

int g_counter = 0;  // intentionally not atomic, not guarded

void
bump()
{
    for (int i = 0; i < kItersPerThread; ++i)
        ++g_counter;
}

}  // namespace

int
main()
{
    std::thread a(bump);
    std::thread b(bump);
    a.join();
    b.join();
    // Exit 0 regardless of the torn count: the only failure signal we
    // want is tsan's own nonzero exit, so WILL_FAIL tests exactly the
    // sanitizer and not the scheduler.
    return 0;
}
