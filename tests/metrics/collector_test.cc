#include "metrics/collector.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace proteus {
namespace {

Query
finishedQuery(FamilyId family, QueryStatus status, double accuracy)
{
    Query q;
    q.family = family;
    q.status = status;
    q.accuracy = accuracy;
    q.completion = 0;
    return q;
}

TEST(MetricsCollectorTest, CountsByStatus)
{
    Simulator sim;
    MetricsCollector mc(&sim, 2, seconds(10.0));
    mc.start();
    Query q;
    q.family = 0;
    mc.onArrival(q);
    mc.onArrival(q);
    mc.onArrival(q);
    mc.onFinished(finishedQuery(0, QueryStatus::Served, 95.0));
    mc.onFinished(finishedQuery(0, QueryStatus::ServedLate, 90.0));
    mc.onFinished(finishedQuery(0, QueryStatus::Dropped, 0.0));
    mc.finalize();
    RunSummary s = mc.summary();
    EXPECT_EQ(s.arrivals, 3u);
    EXPECT_EQ(s.served, 1u);
    EXPECT_EQ(s.served_late, 1u);
    EXPECT_EQ(s.dropped, 1u);
    EXPECT_EQ(s.violations(), 2u);
    EXPECT_NEAR(s.slo_violation_ratio, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.effective_accuracy, 92.5, 1e-12);
}

TEST(MetricsCollectorTest, PerFamilyTotals)
{
    Simulator sim;
    MetricsCollector mc(&sim, 3, seconds(10.0));
    mc.start();
    Query q;
    q.family = 2;
    mc.onArrival(q);
    mc.onFinished(finishedQuery(2, QueryStatus::Served, 88.0));
    mc.finalize();
    const auto& fam = mc.familyTotals();
    EXPECT_EQ(fam[2].arrivals, 1u);
    EXPECT_EQ(fam[2].served, 1u);
    EXPECT_EQ(fam[0].arrivals, 0u);
}

TEST(MetricsCollectorTest, IntervalsCommitOnSchedule)
{
    Simulator sim;
    MetricsCollector mc(&sim, 1, seconds(10.0));
    mc.start();
    // One served query per second for 35 seconds.
    std::deque<Query> arena;
    for (int i = 0; i < 35; ++i) {
        sim.scheduleAt(seconds(i) + 1, [&mc] {
            Query q;
            q.family = 0;
            mc.onArrival(q);
            mc.onFinished(finishedQuery(0, QueryStatus::Served, 100.0));
        });
    }
    sim.run(seconds(35.0));
    mc.finalize();
    ASSERT_GE(mc.timeline().size(), 3u);
    EXPECT_NEAR(mc.timeline()[0].throughputQps(), 1.0, 0.11);
    EXPECT_NEAR(mc.timeline()[1].demandQps(), 1.0, 0.11);
}

TEST(MetricsCollectorTest, MaxAccuracyDropUsesWorstInterval)
{
    Simulator sim;
    MetricsCollector mc(&sim, 1, seconds(10.0));
    mc.start();
    // First interval at 100, second at 90.
    sim.scheduleAt(seconds(1.0), [&] {
        mc.onFinished(finishedQuery(0, QueryStatus::Served, 100.0));
    });
    sim.scheduleAt(seconds(15.0), [&] {
        mc.onFinished(finishedQuery(0, QueryStatus::Served, 90.0));
    });
    sim.run(seconds(25.0));
    mc.finalize();
    EXPECT_NEAR(mc.summary().max_accuracy_drop, 10.0, 1e-9);
}

TEST(MetricsCollectorTest, EmptyIntervalsDontPolluteDrop)
{
    Simulator sim;
    MetricsCollector mc(&sim, 1, seconds(10.0));
    mc.start();
    sim.scheduleAt(seconds(1.0), [&] {
        mc.onFinished(finishedQuery(0, QueryStatus::Served, 99.0));
    });
    // Long silence afterwards.
    sim.run(seconds(60.0));
    mc.finalize();
    EXPECT_NEAR(mc.summary().max_accuracy_drop, 1.0, 1e-9);
}

TEST(MetricsCollectorTest, SummaryOnEmptyRun)
{
    Simulator sim;
    MetricsCollector mc(&sim, 1, seconds(10.0));
    mc.start();
    mc.finalize();
    RunSummary s = mc.summary();
    EXPECT_EQ(s.arrivals, 0u);
    EXPECT_DOUBLE_EQ(s.slo_violation_ratio, 0.0);
    EXPECT_DOUBLE_EQ(s.avg_throughput_qps, 0.0);
}

TEST(IntervalCountersTest, Helpers)
{
    IntervalCounters c;
    c.served = 3;
    c.served_late = 1;
    c.dropped = 2;
    c.accuracy_sum = 4 * 95.0;
    EXPECT_EQ(c.completed(), 4u);
    EXPECT_EQ(c.violations(), 3u);
    EXPECT_DOUBLE_EQ(c.effectiveAccuracy(), 95.0);
}

}  // namespace
}  // namespace proteus
