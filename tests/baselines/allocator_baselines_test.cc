#include <gtest/gtest.h>

#include <set>

#include "baselines/clipper.h"
#include "baselines/infaas.h"
#include "baselines/sommelier.h"
#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::World;

std::vector<double>
demandOf(const World& w, std::initializer_list<double> values)
{
    std::vector<double> d(w.registry.numFamilies(), 0.0);
    std::size_t i = 0;
    for (double v : values) {
        if (i >= d.size())
            break;
        d[i++] = v;
    }
    return d;
}

TEST(ClipperAllocatorTest, PlanIsStatic)
{
    World w = miniWorld();
    ClipperAllocator alloc(&w.registry, &w.cluster, w.profiles.get(),
                           ClipperMode::HighThroughput);
    AllocationInput a;
    a.demand_qps = demandOf(w, {100.0, 40.0, 30.0});
    Allocation first = alloc.allocate(a);
    AllocationInput b;
    b.demand_qps = demandOf(w, {500.0, 1.0, 1.0});  // very different
    Allocation second = alloc.allocate(b);
    ASSERT_EQ(first.hosting.size(), second.hosting.size());
    for (DeviceId d = 0; d < first.hosting.size(); ++d)
        EXPECT_EQ(first.hosting[d], second.hosting[d]) << d;
}

TEST(ClipperAllocatorTest, HtPinsLeastAccurateVariants)
{
    World w = miniWorld();
    ClipperAllocator alloc(&w.registry, &w.cluster, w.profiles.get(),
                           ClipperMode::HighThroughput);
    AllocationInput in;
    in.demand_qps = demandOf(w, {100.0, 40.0, 30.0});
    Allocation plan = alloc.allocate(in);
    for (const auto& h : plan.hosting) {
        if (!h)
            continue;
        FamilyId f = w.registry.familyOf(*h);
        EXPECT_EQ(*h, w.registry.leastAccurate(f));
    }
}

TEST(ClipperAllocatorTest, HaPinsMostAccurateUsableVariants)
{
    World w = miniWorld();
    ClipperAllocator alloc(&w.registry, &w.cluster, w.profiles.get(),
                           ClipperMode::HighAccuracy);
    AllocationInput in;
    in.demand_qps = demandOf(w, {20.0, 10.0, 10.0});
    Allocation plan = alloc.allocate(in);
    bool hosted_any = false;
    for (const auto& h : plan.hosting) {
        if (!h)
            continue;
        hosted_any = true;
        FamilyId f = w.registry.familyOf(*h);
        // The pinned variant is the most accurate that is usable on
        // at least one device type.
        const auto& vs = w.registry.variantsOf(f);
        VariantId expected = vs.front();
        for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
            bool usable = false;
            for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t)
                usable |= w.profiles->get(*it, t).usable();
            if (usable) {
                expected = *it;
                break;
            }
        }
        EXPECT_EQ(*h, expected);
    }
    EXPECT_TRUE(hosted_any);
}

TEST(SommelierAllocatorTest, PlacementFrozenAfterFirstCall)
{
    World w = miniWorld(4, 2, 2);
    SommelierAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput a;
    a.demand_qps = demandOf(w, {100.0, 40.0, 30.0});
    Allocation first = alloc.allocate(a);

    auto family_map = [&](const Allocation& plan) {
        std::vector<int> fam(plan.hosting.size(), -1);
        for (DeviceId d = 0; d < plan.hosting.size(); ++d) {
            if (plan.hosting[d])
                fam[d] = static_cast<int>(
                    w.registry.familyOf(*plan.hosting[d]));
        }
        return fam;
    };
    auto fam1 = family_map(first);

    // Radically different demand: variants may change, families may
    // shrink (devices can idle), but no device may switch family.
    AllocationInput b;
    b.demand_qps = demandOf(w, {400.0, 5.0, 5.0});
    b.current = &first;
    Allocation second = alloc.allocate(b);
    auto fam2 = family_map(second);
    for (std::size_t d = 0; d < fam1.size(); ++d) {
        if (fam2[d] != -1) {
            EXPECT_EQ(fam2[d], fam1[d]) << "device " << d;
        }
    }
}

TEST(SommelierAllocatorTest, StillScalesAccuracyWithinFamilies)
{
    World w = miniWorld(4, 2, 2);
    SommelierAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput a;
    a.demand_qps = demandOf(w, {30.0, 10.0, 10.0});
    Allocation first = alloc.allocate(a);
    double acc_low = first.expected_accuracy;
    // Crank demand on family 0: its devices must downshift variants.
    AllocationInput b;
    b.demand_qps = demandOf(w, {600.0, 10.0, 10.0});
    b.current = &first;
    Allocation second = alloc.allocate(b);
    EXPECT_LE(second.expected_accuracy, acc_low);
}

TEST(InfaasAllocatorTest, MeetsModerateDemand)
{
    World w = miniWorld(4, 2, 2);
    InfaasAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {100.0, 40.0, 30.0});
    Allocation plan = alloc.allocate(in);
    for (FamilyId f = 0; f < 3; ++f) {
        EXPECT_GE(plan.family_capacity[f], in.demand_qps[f])
            << w.registry.family(f).name;
        EXPECT_NEAR(plan.routedFraction(f), 1.0, 1e-6);
    }
}

TEST(InfaasAllocatorTest, RoutingIsCapacityProportional)
{
    World w = miniWorld(4, 2, 2);
    InfaasAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {200.0, 0.0, 0.0});
    Allocation plan = alloc.allocate(in);
    for (const DeviceShare& s : plan.routing[0]) {
        DeviceTypeId t = w.cluster.device(s.device).type;
        double peak = w.profiles->get(*plan.hosting[s.device], t)
                          .peak_qps;
        EXPECT_NEAR(s.weight,
                    peak / plan.family_capacity[0] *
                        plan.routedFraction(0),
                    1e-9);
    }
}

TEST(InfaasAllocatorTest, UpgradesAccuracyOnSurplus)
{
    World w = miniWorld(4, 2, 2);
    InfaasAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    // First a heavy load (low-accuracy variants), then a light one:
    // the heuristic should climb back up in accuracy.
    AllocationInput heavy;
    heavy.demand_qps = demandOf(w, {800.0, 200.0, 100.0});
    Allocation plan_heavy = alloc.allocate(heavy);
    AllocationInput light;
    light.demand_qps = demandOf(w, {5.0, 2.0, 2.0});
    light.current = &plan_heavy;
    Allocation plan_light = alloc.allocate(light);
    EXPECT_GT(plan_light.expected_accuracy,
              plan_heavy.expected_accuracy);
}

TEST(InfaasAllocatorTest, OverloadServesAtMostCapacity)
{
    World w = miniWorld(1, 0, 1);
    InfaasAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    AllocationInput in;
    in.demand_qps = demandOf(w, {1e6, 0.0, 0.0});
    Allocation plan = alloc.allocate(in);
    EXPECT_LT(plan.planned_fraction, 1.0);
    EXPECT_LE(plan.routedFraction(0), 1.0 + 1e-9);
}

TEST(InfaasAllocatorTest, ZeroDecisionDelay)
{
    World w = miniWorld();
    InfaasAllocator alloc(&w.registry, &w.cluster, w.profiles.get());
    EXPECT_EQ(alloc.decisionDelay(), 0);
}

}  // namespace
}  // namespace proteus
