#include <gtest/gtest.h>

#include <vector>

#include "baselines/aimd_batching.h"
#include "baselines/nexus_batching.h"
#include "core/batching.h"

namespace proteus {
namespace {

BatchProfile
makeProfile(Duration overhead, Duration per_item, int max_batch,
            int table_size = 32)
{
    BatchProfile prof;
    for (int b = 1; b <= table_size; ++b)
        prof.latency.push_back(overhead + per_item * b);
    prof.max_batch = max_batch;
    prof.peak_qps = max_batch / toSeconds(prof.latencyFor(max_batch));
    return prof;
}

struct QueueFixture {
    QueryQueue queue;
    std::vector<Query> storage;

    void
    add(Time arrival, Duration slo)
    {
        storage.reserve(64);
        storage.push_back(Query{});
        storage.back().arrival = arrival;
        storage.back().deadline = arrival + slo;
        queue.push_back(&storage.back());
    }
};

WorkerView
view(Time now, const QueueFixture& fix, const BatchProfile& prof,
     Duration slo)
{
    WorkerView v;
    v.now = now;
    v.queue = &fix.queue;
    v.profile = &prof;
    v.slo = slo;
    return v;
}

// ---------------------------------------------------------------- AIMD

TEST(AimdBatchingTest, StartsWithBatchOne)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    QueueFixture fix;
    fix.add(0, millis(100));
    AimdBatching policy;
    BatchAction a = policy.decide(view(millis(1), fix, prof,
                                       millis(100)));
    EXPECT_EQ(a.execute, 1);
    EXPECT_EQ(policy.targetBatch(), 1);
}

TEST(AimdBatchingTest, AdditiveIncreaseOnCleanBatches)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    AimdBatching policy;
    QueueFixture fix;
    fix.add(0, millis(100));
    policy.decide(view(millis(1), fix, prof, millis(100)));
    for (int i = 0; i < 5; ++i)
        policy.onBatchOutcome(1, /*any_violation=*/false);
    EXPECT_EQ(policy.targetBatch(), 6);
}

TEST(AimdBatchingTest, MultiplicativeDecreaseOnViolation)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    AimdBatching policy;
    QueueFixture fix;
    fix.add(0, millis(100));
    policy.decide(view(millis(1), fix, prof, millis(100)));
    for (int i = 0; i < 7; ++i)
        policy.onBatchOutcome(1, false);  // target -> 8
    policy.onBatchOutcome(8, /*any_violation=*/true);
    EXPECT_EQ(policy.targetBatch(), 4);
    policy.onBatchOutcome(4, true);
    EXPECT_EQ(policy.targetBatch(), 2);
}

TEST(AimdBatchingTest, NeverBelowOne)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    AimdBatching policy;
    QueueFixture fix;
    fix.add(0, millis(100));
    policy.decide(view(millis(1), fix, prof, millis(100)));
    for (int i = 0; i < 10; ++i)
        policy.onBatchOutcome(1, true);
    EXPECT_EQ(policy.targetBatch(), 1);
}

TEST(AimdBatchingTest, WaitsForFullBatchThenFlushes)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 8);
    AimdBatching policy;
    QueueFixture fix;
    const Duration slo = millis(100);
    fix.add(millis(0), slo);
    policy.decide(view(millis(1), fix, prof, slo));
    for (int i = 0; i < 3; ++i)
        policy.onBatchOutcome(1, false);  // target 4
    // Queue of 2 < target 4: waits until arrival + SLO/4.
    QueueFixture fix2;
    fix2.add(millis(10), slo);
    fix2.add(millis(11), slo);
    BatchAction a = policy.decide(view(millis(12), fix2, prof, slo));
    EXPECT_EQ(a.execute, 0);
    EXPECT_EQ(a.wake_at, millis(10) + millis(25));
    // After the flush deadline it executes what it has.
    BatchAction b = policy.decide(view(millis(40), fix2, prof, slo));
    EXPECT_EQ(b.execute, 2);
}

TEST(AimdBatchingTest, CanExceedSloSafeBatch)
{
    // AIMD probes beyond the half-SLO-safe max batch; only the
    // profiled (memory) range caps it.
    BatchProfile prof = makeProfile(millis(1), millis(1), /*max=*/2,
                                    /*table=*/16);
    AimdBatching policy;
    QueueFixture fix;
    const Duration slo = millis(100);
    for (int i = 0; i < 16; ++i)
        fix.add(millis(i), slo);
    policy.decide(view(millis(16), fix, prof, slo));
    for (int i = 0; i < 20; ++i)
        policy.onBatchOutcome(1, false);
    EXPECT_GT(policy.targetBatch(), 2);
    // The hard (memory/profiled) cap is applied on the next decision.
    BatchAction a = policy.decide(view(millis(17), fix, prof, slo));
    EXPECT_LE(a.execute, 16);
    EXPECT_LE(policy.targetBatch(), 16);
}

// --------------------------------------------------------------- Nexus

TEST(NexusBatchingTest, WorkConservingExecutesImmediately)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    const Duration slo = millis(100);
    fix.add(millis(0), slo);
    NexusBatching policy;
    // Far from any deadline, Nexus still executes now (batch 1): it
    // never waits.
    BatchAction a = policy.decide(view(millis(1), fix, prof, slo));
    EXPECT_EQ(a.execute, 1);
    EXPECT_EQ(a.wake_at, kNoTime);
}

TEST(NexusBatchingTest, EarlyDropsExpired)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    fix.add(millis(0), millis(10));    // hopeless at t=50
    fix.add(millis(45), millis(100));  // serveable
    NexusBatching policy;
    BatchAction a = policy.decide(view(millis(50), fix, prof,
                                       millis(100)));
    EXPECT_EQ(a.drop, 1);
    EXPECT_EQ(a.execute, 1);
}

TEST(NexusBatchingTest, BatchBoundedByHeadDeadline)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    const Duration slo = millis(20);
    for (int i = 0; i < 8; ++i)
        fix.add(millis(i), slo);
    // Head deadline 20 ms; at t=5 latency(4)=14 -> 19 ok,
    // latency(5)=17 -> 22 > 20. Expect 4.
    NexusBatching policy;
    BatchAction a = policy.decide(view(millis(5), fix, prof, slo));
    EXPECT_EQ(a.execute, 4);
}

TEST(NexusBatchingTest, CapsAtMaxBatch)
{
    BatchProfile prof = makeProfile(millis(1), millis(1), 3);
    QueueFixture fix;
    const Duration slo = millis(500);
    for (int i = 0; i < 10; ++i)
        fix.add(millis(i), slo);
    NexusBatching policy;
    BatchAction a = policy.decide(view(millis(10), fix, prof, slo));
    EXPECT_EQ(a.execute, 3);
}

TEST(NexusBatchingTest, EmptyAfterDropsIsFine)
{
    BatchProfile prof = makeProfile(millis(2), millis(3), 8);
    QueueFixture fix;
    fix.add(millis(0), millis(5));
    NexusBatching policy;
    BatchAction a = policy.decide(view(millis(60), fix, prof,
                                       millis(5)));
    EXPECT_EQ(a.drop, 1);
    EXPECT_EQ(a.execute, 0);
}

}  // namespace
}  // namespace proteus
