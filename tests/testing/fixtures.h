/**
 * @file
 * Shared test fixtures: small clusters, registries and profile stores
 * used across the module tests.
 */

#ifndef PROTEUS_TESTS_TESTING_FIXTURES_H_
#define PROTEUS_TESTS_TESTING_FIXTURES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/device.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "models/profiler.h"
#include "sweep/runner.h"

namespace proteus {
namespace testing {

/** A tiny world: cluster + registry + cost model + profiles. */
struct World {
    Cluster cluster;
    StandardTypes types;
    ModelRegistry registry;
    std::unique_ptr<CostModel> cost;
    std::unique_ptr<ProfileStore> profiles;
};

/** Build a world with the mini zoo on a small mixed cluster. */
inline World
miniWorld(int cpus = 4, int gtx = 2, int v100 = 2,
          ProfilerOptions options = {})
{
    World w;
    w.types = addStandardTypes(&w.cluster);
    w.cluster.addDevices(w.types.cpu, cpus);
    w.cluster.addDevices(w.types.gtx1080ti, gtx);
    w.cluster.addDevices(w.types.v100, v100);
    for (const auto& fam : miniModelZoo())
        w.registry.registerFamily(fam);
    w.cost = std::make_unique<CostModel>(w.cluster, w.registry);
    w.profiles = std::make_unique<ProfileStore>(
        profileModels(w.registry, w.cluster, *w.cost, options));
    return w;
}

/** Build a world with the full Table 3 zoo on the paper cluster. */
inline World
paperWorld(ProfilerOptions options = {})
{
    World w;
    w.cluster = paperCluster(&w.types);
    w.registry = paperRegistry();
    w.cost = std::make_unique<CostModel>(w.cluster, w.registry);
    w.profiles = std::make_unique<ProfileStore>(
        profileModels(w.registry, w.cluster, *w.cost, options));
    return w;
}

// ---------------------------------------------------------------------------
// SeedSweep: the shared N-seed byte-determinism harness
// ---------------------------------------------------------------------------

/** Shape of a seed sweep: [first, first + count) across threads. */
struct SeedSweepOptions {
    std::uint64_t first = 1;  ///< first seed (inclusive)
    int count = 20;           ///< number of seeds
    int threads = 4;          ///< worker threads (sweep::parallelFor)
};

/**
 * Run @p fn(seed) once per seed across the sweep runner's worker
 * pool and return the fingerprints in seed order. @p fn must be
 * callable concurrently from multiple threads — build any World or
 * system state inside the function, never share it across seeds.
 */
template <typename Fn>
std::vector<std::string>
runSeedSweep(Fn&& fn, SeedSweepOptions opts = {})
{
    std::vector<std::string> out(static_cast<std::size_t>(opts.count));
    sweep::parallelFor(out.size(), opts.threads, [&](std::size_t i) {
        out[i] = fn(opts.first + static_cast<std::uint64_t>(i));
    });
    return out;
}

/**
 * The shared 20-seed byte-determinism pattern: run @p fn twice per
 * seed in parallel and assert the fingerprints are byte-identical.
 * Pairs run concurrently across seeds, so this also exercises the
 * claim that parallel in-process runs do not perturb each other.
 * Assertions fire on the calling thread (gtest EXPECT_* is not
 * guaranteed thread-safe), so workers only collect strings.
 */
template <typename Fn>
void
expectSeedSweepByteIdentical(Fn&& fn, SeedSweepOptions opts = {})
{
    std::vector<std::pair<std::string, std::string>> runs(
        static_cast<std::size_t>(opts.count));
    sweep::parallelFor(runs.size(), opts.threads, [&](std::size_t i) {
        const std::uint64_t seed =
            opts.first + static_cast<std::uint64_t>(i);
        runs[i].first = fn(seed);
        runs[i].second = fn(seed);
    });
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const std::uint64_t seed =
            opts.first + static_cast<std::uint64_t>(i);
        EXPECT_FALSE(runs[i].first.empty()) << "seed " << seed;
        EXPECT_EQ(runs[i].first, runs[i].second)
            << "same-seed runs differ at seed " << seed;
    }
}

}  // namespace testing
}  // namespace proteus

#endif  // PROTEUS_TESTS_TESTING_FIXTURES_H_
