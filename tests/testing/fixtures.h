/**
 * @file
 * Shared test fixtures: small clusters, registries and profile stores
 * used across the module tests.
 */

#ifndef PROTEUS_TESTS_TESTING_FIXTURES_H_
#define PROTEUS_TESTS_TESTING_FIXTURES_H_

#include <memory>

#include "cluster/device.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "models/profiler.h"

namespace proteus {
namespace testing {

/** A tiny world: cluster + registry + cost model + profiles. */
struct World {
    Cluster cluster;
    StandardTypes types;
    ModelRegistry registry;
    std::unique_ptr<CostModel> cost;
    std::unique_ptr<ProfileStore> profiles;
};

/** Build a world with the mini zoo on a small mixed cluster. */
inline World
miniWorld(int cpus = 4, int gtx = 2, int v100 = 2,
          ProfilerOptions options = {})
{
    World w;
    w.types = addStandardTypes(&w.cluster);
    w.cluster.addDevices(w.types.cpu, cpus);
    w.cluster.addDevices(w.types.gtx1080ti, gtx);
    w.cluster.addDevices(w.types.v100, v100);
    for (const auto& fam : miniModelZoo())
        w.registry.registerFamily(fam);
    w.cost = std::make_unique<CostModel>(w.cluster, w.registry);
    w.profiles = std::make_unique<ProfileStore>(
        profileModels(w.registry, w.cluster, *w.cost, options));
    return w;
}

/** Build a world with the full Table 3 zoo on the paper cluster. */
inline World
paperWorld(ProfilerOptions options = {})
{
    World w;
    w.cluster = paperCluster(&w.types);
    w.registry = paperRegistry();
    w.cost = std::make_unique<CostModel>(w.cluster, w.registry);
    w.profiles = std::make_unique<ProfileStore>(
        profileModels(w.registry, w.cluster, *w.cost, options));
    return w;
}

}  // namespace testing
}  // namespace proteus

#endif  // PROTEUS_TESTS_TESTING_FIXTURES_H_
