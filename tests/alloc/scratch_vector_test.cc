#include "common/alloc/scratch_vector.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

namespace proteus {
namespace {

TEST(ScratchVectorTest, ClearKeepsCapacity)
{
    alloc::ScratchVector<int> s;
    for (int i = 0; i < 100; ++i)
        s.push_back(i);
    const std::size_t cap = s.capacity();
    EXPECT_GE(cap, 100u);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.capacity(), cap);
    s.push_back(1);
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s.capacity(), cap);
}

TEST(ScratchVectorTest, AssignReplacesContents)
{
    alloc::ScratchVector<int> s;
    s.push_back(9);
    const std::vector<int> src{1, 2, 3};
    s.assign(src.begin(), src.end());
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s[2], 3);
}

TEST(ScratchVectorTest, ViewAndIterationSeeTheSameElements)
{
    alloc::ScratchVector<int> s;
    s.push_back(4);
    s.push_back(5);
    EXPECT_EQ(s.view().size(), 2u);
    int sum = 0;
    for (int x : s)
        sum += x;
    EXPECT_EQ(sum, 9);
}

TEST(ScratchVectorTest, BufferCannotBeGivenAway)
{
    using S = alloc::ScratchVector<int>;
    static_assert(!std::is_copy_constructible_v<S>);
    static_assert(!std::is_move_constructible_v<S>);
    static_assert(!std::is_copy_assignable_v<S>);
    static_assert(!std::is_move_assignable_v<S>);
}

}  // namespace
}  // namespace proteus
