#include "common/alloc/ring_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace proteus {
namespace {

TEST(RingQueueTest, FifoOrder)
{
    alloc::RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    q.push_back(1);
    q.push_back(2);
    q.push_back(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 3);
    q.pop_front();
    EXPECT_EQ(q.front(), 2);
    q.pop_front();
    q.pop_front();
    EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, IndexingCountsFromTheFront)
{
    alloc::RingQueue<int> q;
    for (int i = 0; i < 6; ++i)
        q.push_back(i);
    q.pop_front();
    q.pop_front();
    EXPECT_EQ(q[0], 2);
    EXPECT_EQ(q[3], 5);
}

TEST(RingQueueTest, WrapAroundPreservesOrder)
{
    alloc::RingQueue<int> q;
    q.reserve(8);
    const std::size_t cap = q.capacity();
    // Drift the head far past the buffer size at steady occupancy.
    for (int i = 0; i < 100; ++i) {
        q.push_back(i);
        if (q.size() > 3)
            q.pop_front();
    }
    EXPECT_EQ(q.capacity(), cap);  // never grew past the high-water
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q[0], 97);
    EXPECT_EQ(q[1], 98);
    EXPECT_EQ(q[2], 99);
}

TEST(RingQueueTest, GrowthDoublesAndKeepsContents)
{
    alloc::RingQueue<int> q;
    for (int i = 0; i < 3; ++i)
        q.push_back(i);
    q.pop_front();  // move head off zero so growth must unwrap
    for (int i = 3; i < 40; ++i)
        q.push_back(i);
    ASSERT_EQ(q.size(), 39u);
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(q[i], static_cast<int>(i) + 1);
    EXPECT_EQ(q.capacity(), 64u);  // power of two
}

TEST(RingQueueTest, RangeForMatchesIndexing)
{
    alloc::RingQueue<int> q;
    for (int i = 0; i < 10; ++i)
        q.push_back(i * i);
    q.pop_front();
    std::vector<int> seen;
    for (int x : q)
        seen.push_back(x);
    ASSERT_EQ(seen.size(), q.size());
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(seen[i], q[i]);
}

TEST(RingQueueTest, ClearKeepsCapacity)
{
    alloc::RingQueue<int> q;
    for (int i = 0; i < 20; ++i)
        q.push_back(i);
    const std::size_t cap = q.capacity();
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), cap);
    q.push_back(5);
    EXPECT_EQ(q.front(), 5);
}

}  // namespace
}  // namespace proteus
