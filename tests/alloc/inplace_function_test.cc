#include "common/alloc/inplace_function.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace proteus {
namespace {

using Fn = alloc::InplaceFunction<64>;

TEST(InplaceFunctionTest, InvokesCapturedLambda)
{
    int hits = 0;
    Fn fn = [&hits] { ++hits; };
    ASSERT_TRUE(static_cast<bool>(fn));
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InplaceFunctionTest, DefaultConstructedIsEmpty)
{
    Fn fn;
    EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InplaceFunctionTest, MoveTransfersTheCallable)
{
    int hits = 0;
    Fn a = [&hits] { ++hits; };
    Fn b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    Fn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InplaceFunctionTest, ResetDestroysTheCapture)
{
    struct Probe {
        int* destroyed;
        explicit Probe(int* d) : destroyed(d) {}
        Probe(Probe&& o) noexcept : destroyed(o.destroyed)
        {
            o.destroyed = nullptr;
        }
        ~Probe()
        {
            if (destroyed)
                ++*destroyed;
        }
        void operator()() const {}
    };
    int destroyed = 0;
    {
        Fn fn{Probe(&destroyed)};
        EXPECT_EQ(destroyed, 0);
        fn.reset();
        EXPECT_EQ(destroyed, 1);
        EXPECT_FALSE(static_cast<bool>(fn));
    }
    // Destructor of an already-reset function must not double-destroy.
    EXPECT_EQ(destroyed, 1);
}

TEST(InplaceFunctionTest, MoveAssignReleasesThePreviousCallable)
{
    int first = 0;
    int second = 0;
    Fn fn = [&first] { ++first; };
    fn = Fn([&second] { ++second; });
    fn();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
}

TEST(InplaceFunctionTest, CapacityFitsHotPathCaptures)
{
    // The simulator's callbacks capture up to a few pointers plus an
    // integer id — well within the 64-byte budget.
    struct Big {
        std::uint64_t a[6];
    };
    Big big{};
    big.a[5] = 17;
    std::uint64_t got = 0;
    Fn fn = [big, &got] { got = big.a[5]; };
    fn();
    EXPECT_EQ(got, 17u);
    static_assert(sizeof(Fn) <= 64 + 2 * sizeof(void*) + alignof(std::max_align_t),
                  "InplaceFunction should stay pointer-sized overhead");
}

}  // namespace
}  // namespace proteus
