#include "common/alloc/frame_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace proteus {
namespace {

TEST(FrameArenaTest, AllocationsAreDisjointAndAligned)
{
    alloc::FrameArena arena(256);
    auto* a = arena.allocateArray<std::uint64_t>(4);
    auto* b = arena.allocateArray<std::uint32_t>(3);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t),
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint32_t),
              0u);
    std::memset(a, 0xAA, 4 * sizeof(std::uint64_t));
    std::memset(b, 0xBB, 3 * sizeof(std::uint32_t));
    EXPECT_EQ(a[0], 0xAAAAAAAAAAAAAAAAull);  // b did not overlap a
}

TEST(FrameArenaTest, ResetReclaimsWithoutReleasingBlocks)
{
    alloc::FrameArena arena(128);
    for (int i = 0; i < 10; ++i)
        arena.allocate(100);
    const std::size_t warm_capacity = arena.capacity();
    EXPECT_GT(warm_capacity, 0u);
    EXPECT_EQ(arena.bytes_used(), 1000u);

    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    EXPECT_EQ(arena.capacity(), warm_capacity);

    // Same frame shape after reset reuses the retained blocks.
    for (int i = 0; i < 10; ++i)
        arena.allocate(100);
    EXPECT_EQ(arena.capacity(), warm_capacity);
}

TEST(FrameArenaTest, OversizedRequestGetsDedicatedBlock)
{
    alloc::FrameArena arena(64);
    void* big = arena.allocate(1000);
    ASSERT_NE(big, nullptr);
    EXPECT_GE(arena.capacity(), 1000u);
    // The oversized block is retained and reusable after reset.
    arena.reset();
    const std::size_t cap = arena.capacity();
    arena.allocate(1000);
    EXPECT_EQ(arena.capacity(), cap);
}

TEST(FrameArenaTest, FirstFrameStartsEmpty)
{
    alloc::FrameArena arena;
    EXPECT_EQ(arena.bytes_used(), 0u);
    EXPECT_EQ(arena.capacity(), 0u);
}

TEST(ArenaVectorTest, PushBackGrowsAndPreservesContents)
{
    alloc::FrameArena arena(4096);
    alloc::ArenaVector<int> v(&arena);
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    ASSERT_EQ(v.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(v[i], i);
    int expect = 0;
    for (int x : v)
        EXPECT_EQ(x, expect++);
}

TEST(ArenaVectorTest, ClearForgetsContentsStorageStaysWithFrame)
{
    alloc::FrameArena arena(4096);
    alloc::ArenaVector<int> v(&arena);
    v.push_back(7);
    v.clear();
    EXPECT_TRUE(v.empty());
    v.push_back(9);
    EXPECT_EQ(v[0], 9);
}

TEST(ArenaVectorTest, ManyVectorsShareOneFrame)
{
    alloc::FrameArena arena(1024);
    alloc::ArenaVector<double> a(&arena);
    alloc::ArenaVector<double> b(&arena);
    for (int i = 0; i < 16; ++i) {
        a.push_back(i * 1.0);
        b.push_back(i * 2.0);
    }
    for (int i = 0; i < 16; ++i) {
        EXPECT_DOUBLE_EQ(a[i], i * 1.0);
        EXPECT_DOUBLE_EQ(b[i], i * 2.0);
    }
}

}  // namespace
}  // namespace proteus
