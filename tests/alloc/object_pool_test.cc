#include "common/alloc/object_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace proteus {
namespace {

struct Payload {
    int value = 0;
};

TEST(ObjectPoolTest, AcquireHandsOutDistinctSlots)
{
    alloc::ObjectPool<Payload> pool(4);
    Payload* a = pool.acquire();
    Payload* b = pool.acquire();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.in_use(), 2u);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.in_use(), 0u);
}

TEST(ObjectPoolTest, ReuseOrderIsLifo)
{
    alloc::ObjectPool<Payload> pool(4);
    Payload* a = pool.acquire();
    Payload* b = pool.acquire();
    Payload* c = pool.acquire();
    pool.release(b);
    pool.release(a);
    // Most recently released slot comes back first.
    EXPECT_EQ(pool.acquire(), a);
    EXPECT_EQ(pool.acquire(), b);
    pool.release(c);
    EXPECT_EQ(pool.acquire(), c);
}

TEST(ObjectPoolTest, ExhaustionGrowsByWholeChunks)
{
    alloc::ObjectPool<Payload> pool(2);
    EXPECT_EQ(pool.capacity(), 0u);
    std::vector<Payload*> live;
    for (int i = 0; i < 5; ++i)
        live.push_back(pool.acquire());
    EXPECT_EQ(pool.in_use(), 5u);
    EXPECT_EQ(pool.capacity(), 6u);  // three chunks of two
    for (Payload* p : live)
        pool.release(p);
    // Warm pool: re-acquiring within capacity never adds chunks.
    for (int i = 0; i < 6; ++i)
        pool.acquire();
    EXPECT_EQ(pool.capacity(), 6u);
}

TEST(ObjectPoolTest, ReservePreWarmsCapacity)
{
    alloc::ObjectPool<Payload> pool(8);
    pool.reserve(20);
    EXPECT_GE(pool.capacity(), 20u);
    EXPECT_EQ(pool.in_use(), 0u);
    const std::size_t cap = pool.capacity();
    for (std::size_t i = 0; i < cap; ++i)
        pool.acquire();
    EXPECT_EQ(pool.capacity(), cap);
}

TEST(ObjectPoolTest, FreshSlotStateIsPreservedAcrossReuse)
{
    // acquire() deliberately does not reset: callers own the reset.
    alloc::ObjectPool<Payload> pool(4);
    Payload* a = pool.acquire();
    a->value = 41;
    pool.release(a);
    Payload* again = pool.acquire();
    ASSERT_EQ(again, a);
    EXPECT_EQ(again->value, 41);
}

TEST(ObjectPoolTest, ForEachVisitsLiveObjectsInCreationOrder)
{
    alloc::ObjectPool<Payload> pool(2);
    Payload* a = pool.acquire();
    Payload* b = pool.acquire();
    Payload* c = pool.acquire();
    a->value = 1;
    b->value = 2;
    c->value = 3;
    pool.release(b);

    std::vector<int> seen;
    pool.forEach([&](const Payload& p) { seen.push_back(p.value); });
    EXPECT_EQ(seen, (std::vector<int>{1, 3}));

    // Recycled slot (LIFO → b's slot) reappears in creation order,
    // not release order.
    Payload* d = pool.acquire();
    ASSERT_EQ(d, b);
    d->value = 4;
    seen.clear();
    pool.forEachMutable([&](Payload& p) { seen.push_back(p.value); });
    EXPECT_EQ(seen, (std::vector<int>{1, 4, 3}));
}

}  // namespace
}  // namespace proteus
