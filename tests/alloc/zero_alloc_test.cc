/**
 * @file
 * The ISSUE 6 acceptance tests: with the counting operator new linked
 * (proteus_counting_new), a warmed-up serving system executes its
 * steady-state query path with zero heap allocations, the query pool
 * returns to baseline after every run, and the pooled-query refactor
 * stays bit-deterministic across seeds.
 *
 * The steady window is isolated by configuration: control_period and
 * snapshot_interval larger than the trace so no controller decision
 * or metrics commit (both sanctioned allocation sites) lands inside
 * the measured slice, and a uniform under-capacity arrival process so
 * every high-water mark (pool, rings, event heap) is reached during
 * warm-up.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/alloc/alloc_counter.h"
#include "common/alloc/frame_arena.h"
#include "common/alloc/object_pool.h"
#include "common/alloc/ring_queue.h"
#include "core/serving_system.h"
#include "models/model.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

struct MiniSystem {
    Cluster cluster;
    StandardTypes types;
    ModelRegistry reg;

    MiniSystem()
    {
        types = addStandardTypes(&cluster);
        cluster.addDevices(types.cpu, 4);
        cluster.addDevices(types.gtx1080ti, 2);
        cluster.addDevices(types.v100, 2);
        for (const auto& fam : miniModelZoo())
            reg.registerFamily(fam);
    }
};

/**
 * No decisions or snapshot commits inside a 60 s trace: periodic
 * re-planning, burst alarms and metrics commits are the sanctioned
 * epoch-boundary allocation sites (solver scratch, timeline growth),
 * so they are pushed out of the measured window to isolate the
 * per-query path.
 */
SystemConfig
steadyWindowConfig()
{
    SystemConfig cfg;
    cfg.control_period = seconds(3600.0);
    cfg.snapshot_interval = seconds(3600.0);
    cfg.burst_threshold = 1e9;
    return cfg;
}

TEST(ZeroAllocTest, CountingOperatorNewIsLinked)
{
    ASSERT_TRUE(alloc::heapTallyActive())
        << "test binary must link proteus_counting_new";
    alloc::ScopedHeapTally tally;
    auto* p = new int(7);  // NOLINT: probing the interposer itself
    EXPECT_GE(tally.count(), 1u);
    delete p;
}

TEST(ZeroAllocTest, WarmObjectPoolServesWithoutHeapTraffic)
{
    alloc::ObjectPool<int> pool(64);
    pool.reserve(64);
    alloc::ScopedHeapTally tally;
    for (int round = 0; round < 1000; ++round) {
        int* a = pool.acquire();
        int* b = pool.acquire();
        pool.release(a);
        pool.release(b);
    }
    EXPECT_EQ(tally.count(), 0u);
}

TEST(ZeroAllocTest, WarmFrameArenaRunsFramesWithoutHeapTraffic)
{
    alloc::FrameArena arena(4096);
    for (int i = 0; i < 8; ++i)
        arena.allocate(512);  // warm the block chain
    arena.reset();
    alloc::ScopedHeapTally tally;
    for (int frame = 0; frame < 1000; ++frame) {
        for (int i = 0; i < 8; ++i)
            arena.allocate(512);
        arena.reset();
    }
    EXPECT_EQ(tally.count(), 0u);
}

TEST(ZeroAllocTest, WarmRingQueueCyclesWithoutHeapTraffic)
{
    alloc::RingQueue<int> q;
    q.reserve(32);
    alloc::ScopedHeapTally tally;
    for (int i = 0; i < 10000; ++i) {
        q.push_back(i);
        if (q.size() > 20)
            q.pop_front();
    }
    EXPECT_EQ(tally.count(), 0u);
}

TEST(ZeroAllocTest, SteadyStateQueryPathIsAllocationFree)
{
    MiniSystem mini;
    const Trace trace = steadyTrace(mini.reg.numFamilies(), 60.0,
                                    seconds(60.0),
                                    ArrivalProcess::Uniform);
    ServingSystem system(&mini.cluster, &mini.reg,
                         steadyWindowConfig());
    const Time horizon = system.beginRun(trace);

    // Warm-up: initial plan applied (~t=4.2 s), every pool/ring/heap
    // reaches its uniform-load high-water mark.
    system.advanceTo(seconds(20.0));
    const std::uint64_t inflight_warm = system.queriesInFlight();

    alloc::ScopedHeapTally tally;
    system.advanceTo(seconds(50.0));
    const std::uint64_t steady_allocs = tally.count();

    RunResult r = system.finishRun();
    EXPECT_GT(r.summary.arrivals, 1000u);
    EXPECT_EQ(steady_allocs, 0u)
        << "steady-state window (30 s, ~1800 queries) touched the heap";
    EXPECT_GT(inflight_warm, 0u);
    EXPECT_EQ(system.queriesInFlight(), 0u)
        << "query pool did not return to baseline";
    (void)horizon;
}

TEST(ZeroAllocTest, PoolReturnsToBaselineAndGaugesAreExposed)
{
    MiniSystem mini;
    const Trace trace = steadyTrace(mini.reg.numFamilies(), 60.0,
                                    seconds(20.0),
                                    ArrivalProcess::Poisson);
    SystemConfig cfg;
    cfg.obs.enabled = true;
    ServingSystem system(&mini.cluster, &mini.reg, cfg);
    RunResult r = system.run(trace);
    EXPECT_GT(r.summary.arrivals, 0u);

    EXPECT_EQ(system.queriesInFlight(), 0u);
    EXPECT_GT(system.queryPoolCapacity(), 0u);

    const auto& gauges = system.metricsRegistry().gauges();
    ASSERT_EQ(gauges.count("alloc.pool_in_use"), 1u);
    ASSERT_EQ(gauges.count("alloc.pool_capacity"), 1u);
    ASSERT_EQ(gauges.count("alloc.heap_allocs"), 1u);
    EXPECT_EQ(gauges.at("alloc.pool_in_use")->value(), 0.0);
    EXPECT_EQ(gauges.at("alloc.pool_capacity")->value(),
              static_cast<double>(system.queryPoolCapacity()));
    // Counting new is linked into this binary.
    EXPECT_GT(gauges.at("alloc.heap_allocs")->value(), 0.0);
}

TEST(ZeroAllocTest, PooledQueriesStayByteDeterministicAcrossSeeds)
{
    // The pool recycles Query slots and ids; the refactor promises
    // results identical to the old grow-only arena. Two same-seed
    // runs must agree exactly, for 20 seeds — via the shared SeedSweep
    // harness, so the world is built per seed (thread safety) and the
    // pairs run across the sweep worker pool.
    testing::expectSeedSweepByteIdentical([](std::uint64_t seed) {
        MiniSystem mini;
        const Trace trace =
            steadyTrace(mini.reg.numFamilies(), 80.0, seconds(15.0),
                        ArrivalProcess::Poisson, seed);
        SystemConfig cfg;
        cfg.seed = seed;
        ServingSystem system(&mini.cluster, &mini.reg, cfg);
        const RunResult r = system.run(trace);
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "arr=%llu served=%llu late=%llu drop=%llu shed=%llu "
            "tput=%.17g viol=%.17g acc=%.17g inflight=%llu",
            (unsigned long long)r.summary.arrivals,
            (unsigned long long)r.summary.served,
            (unsigned long long)r.summary.served_late,
            (unsigned long long)r.summary.dropped,
            (unsigned long long)r.shed, r.summary.avg_throughput_qps,
            r.summary.slo_violation_ratio,
            r.summary.effective_accuracy,
            (unsigned long long)system.queriesInFlight());
        return std::string(buf);
    });
}

}  // namespace
}  // namespace proteus
